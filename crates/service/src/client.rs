//! A blocking `cohesion-wire/v1` client: handshake, submissions, event
//! streaming. Shared by the `cohesion` CLI, the load generator, and the
//! end-to-end tests.

use std::net::TcpStream;
use std::time::Duration;

use cohesion_bench::jsonv::{self, Value};

use crate::request::{RunRequest, SweepRequest};
use crate::wire::{read_frame, write_frame, ErrorCode, FrameError, MsgType, WIRE_VERSION};

/// A failure talking to the daemon. When the server answered with an
/// `error` frame, `code` carries its decoded [`ErrorCode`].
#[derive(Debug)]
pub struct ClientError {
    /// The server's error code, when the failure was an `error` frame.
    pub code: Option<ErrorCode>,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.code {
            Some(c) => write!(f, "[{}] {}", c.label(), self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    fn local(message: impl Into<String>) -> ClientError {
        ClientError {
            code: None,
            message: message.into(),
        }
    }
}

/// What the server said in `hello-ack`.
#[derive(Debug, Clone)]
pub struct ServerInfo {
    /// Negotiated protocol version.
    pub version: u64,
    /// Server identification string.
    pub server: String,
    /// The server's cache code version.
    pub code_version: String,
}

/// One `pong` answer.
#[derive(Debug, Clone, Copy, Default)]
pub struct PongInfo {
    /// Simulation jobs the daemon has executed (cache misses that ran).
    pub jobs_executed: u64,
    /// Cache hits so far.
    pub cache_hits: u64,
    /// Cache misses so far.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_entries: u64,
}

/// One `stats-reply` answer: the daemon's operational counters. `raw`
/// keeps the full payload for callers that want every field (the CLI's
/// table, the load generator's artifact).
#[derive(Debug, Clone, Default)]
pub struct StatsInfo {
    /// Milliseconds since the daemon started serving.
    pub uptime_ms: u64,
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// `(message name, count)` for every client→server message type.
    pub requests: Vec<(String, u64)>,
    /// `(error label, count)` for every error code.
    pub errors: Vec<(String, u64)>,
    /// Jobs sitting in the bounded queue right now.
    pub queue_depth: u64,
    /// The queue's capacity.
    pub queue_capacity: u64,
    /// Simulation worker threads.
    pub workers_total: u64,
    /// Workers running a job right now.
    pub workers_busy: u64,
    /// Simulation jobs executed (cache misses that ran).
    pub jobs_executed: u64,
    /// Cache hits so far.
    pub cache_hits: u64,
    /// Cache misses so far.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_entries: u64,
    /// The verbatim `stats-reply` JSON payload.
    pub raw: String,
}

impl StatsInfo {
    /// Total client→server frames the daemon has handled.
    pub fn requests_total(&self) -> u64 {
        self.requests.iter().map(|(_, n)| n).sum()
    }

    /// Total error frames the daemon has sent.
    pub fn errors_total(&self) -> u64 {
        self.errors.iter().map(|(_, n)| n).sum()
    }
}

/// One job's report as streamed back by the server.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Index within the submission (0 for single runs).
    pub job: usize,
    /// The server's label, e.g. `sobel @ swcc`.
    pub label: String,
    /// The 32-hex-digit cache key.
    pub key: String,
    /// Whether the submission was answered from the cache.
    pub cached: bool,
    /// The full `cohesion-metrics/v1` document, byte-exact.
    pub doc: String,
}

/// A streamed event during a submission.
#[derive(Debug, Clone)]
pub enum Event {
    /// The submission was validated: total jobs, cache hits, queued jobs.
    Accepted {
        /// Jobs in the submission.
        jobs: usize,
        /// Of which answered from cache.
        cached: usize,
    },
    /// One job finished.
    Progress {
        /// Index within the submission.
        job: usize,
        /// Jobs completed so far.
        completed: usize,
        /// Total jobs.
        total: usize,
        /// The server's label for the job.
        label: String,
        /// Served from cache?
        cached: bool,
        /// Did the simulation succeed?
        ok: bool,
    },
    /// One job failed (`run-failed`); the submission continues.
    JobFailed {
        /// Index within the submission.
        job: usize,
        /// Failure detail.
        message: String,
    },
}

/// The completed submission: per-job reports in submission order.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Reports for every successful job, sorted by job index.
    pub reports: Vec<JobReport>,
    /// Jobs that failed server-side.
    pub failed: usize,
    /// Jobs answered from cache.
    pub cached: usize,
}

/// A connected, handshaken client.
pub struct Client {
    stream: TcpStream,
    info: ServerInfo,
}

impl Client {
    /// Connects and performs the `hello`/`hello-ack` handshake.
    ///
    /// # Errors
    ///
    /// Connection failures, timeouts, or a failed version negotiation.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Client, ClientError> {
        let sock_addr = std::net::ToSocketAddrs::to_socket_addrs(addr)
            .map_err(|e| ClientError::local(format!("resolve {addr}: {e}")))?
            .next()
            .ok_or_else(|| ClientError::local(format!("{addr} resolves to nothing")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, timeout)
            .map_err(|e| ClientError::local(format!("connect {addr}: {e}")))?;
        // Frames are small and latency-sensitive; Nagle + delayed ACK
        // would add ~40 ms to every cache hit.
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(timeout.max(Duration::from_secs(1))))
            .map_err(|e| ClientError::local(e.to_string()))?;
        stream
            .set_write_timeout(Some(timeout.max(Duration::from_secs(1))))
            .map_err(|e| ClientError::local(e.to_string()))?;
        let mut client = Client {
            stream,
            info: ServerInfo {
                version: 0,
                server: String::new(),
                code_version: String::new(),
            },
        };
        let ack = client.roundtrip(
            MsgType::Hello,
            &format!(
                "{{\"versions\": [{WIRE_VERSION}], \"client\": \"cohesion/{}\"}}",
                env!("CARGO_PKG_VERSION")
            ),
            MsgType::HelloAck,
        )?;
        client.info = ServerInfo {
            version: ack.get("version").and_then(Value::as_u64).unwrap_or(0),
            server: ack
                .get("server")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            code_version: ack
                .get("code_version")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
        };
        Ok(client)
    }

    /// The `hello-ack` contents.
    pub fn server_info(&self) -> &ServerInfo {
        &self.info
    }

    /// Sets the read timeout for subsequent replies — raise it for
    /// submissions whose simulations run long.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_reply_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| ClientError::local(e.to_string()))
    }

    /// Sends `ping`, returns the daemon's counters.
    ///
    /// # Errors
    ///
    /// Transport failures or an `error` reply.
    pub fn ping(&mut self) -> Result<PongInfo, ClientError> {
        let v = self.roundtrip(MsgType::Ping, "{}", MsgType::Pong)?;
        let cache = v.get("cache");
        let field = |name: &str| {
            cache
                .and_then(|c| c.get(name))
                .and_then(Value::as_u64)
                .unwrap_or(0)
        };
        Ok(PongInfo {
            jobs_executed: v.get("jobs_executed").and_then(Value::as_u64).unwrap_or(0),
            cache_hits: field("hits"),
            cache_misses: field("misses"),
            cache_entries: field("entries"),
        })
    }

    /// Sends `stats`, returns the daemon's operational counters.
    ///
    /// # Errors
    ///
    /// Transport failures or an `error` reply.
    pub fn stats(&mut self) -> Result<StatsInfo, ClientError> {
        self.send(MsgType::Stats, "{}")?;
        let (got, v, raw) = self.recv_raw()?;
        if got != MsgType::StatsReply {
            return Err(ClientError::local(format!(
                "expected stats-reply, got {}",
                got.name()
            )));
        }
        let num = |name: &str| v.get(name).and_then(Value::as_u64).unwrap_or(0);
        let nested = |obj: &str, name: &str| {
            v.get(obj)
                .and_then(|o| o.get(name))
                .and_then(Value::as_u64)
                .unwrap_or(0)
        };
        let map = |obj: &str| -> Vec<(String, u64)> {
            v.get(obj)
                .and_then(Value::as_obj)
                .unwrap_or_default()
                .iter()
                .filter_map(|(k, n)| Some((k.clone(), n.as_u64()?)))
                .collect()
        };
        Ok(StatsInfo {
            uptime_ms: num("uptime_ms"),
            connections: num("connections"),
            active_connections: num("active_connections"),
            requests: map("requests"),
            errors: map("errors"),
            queue_depth: nested("queue", "depth"),
            queue_capacity: nested("queue", "capacity"),
            workers_total: nested("workers", "total"),
            workers_busy: nested("workers", "busy"),
            jobs_executed: num("jobs_executed"),
            cache_hits: nested("cache", "hits"),
            cache_misses: nested("cache", "misses"),
            cache_entries: nested("cache", "entries"),
            raw,
        })
    }

    /// Submits one run and consumes the event stream until `done`.
    ///
    /// # Errors
    ///
    /// Transport failures or a request-level `error` reply.
    pub fn submit_run(
        &mut self,
        req: &RunRequest,
        mut on_event: impl FnMut(&Event),
    ) -> Result<Outcome, ClientError> {
        self.send(MsgType::SubmitRun, &req.to_json())?;
        self.consume_submission(&mut on_event)
    }

    /// Submits a sweep and consumes the event stream until `done`.
    ///
    /// # Errors
    ///
    /// Transport failures or a request-level `error` reply.
    pub fn submit_sweep(
        &mut self,
        req: &SweepRequest,
        mut on_event: impl FnMut(&Event),
    ) -> Result<Outcome, ClientError> {
        self.send(MsgType::SubmitSweep, &req.to_json())?;
        self.consume_submission(&mut on_event)
    }

    /// Fetches a cached report by key without simulating.
    ///
    /// # Errors
    ///
    /// `not-found` (as an error reply) when the key is absent.
    pub fn fetch(&mut self, key: &str) -> Result<JobReport, ClientError> {
        self.send(
            MsgType::FetchReport,
            &format!("{{\"key\": \"{}\"}}", crate::wire::json_escape(key)),
        )?;
        let mut outcome = self.consume_submission(&mut |_| {})?;
        outcome
            .reports
            .pop()
            .ok_or_else(|| ClientError::local("fetch returned no report"))
    }

    /// Asks the daemon to drain and exit. The reply (`done`) confirms the
    /// drain began.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.roundtrip(MsgType::Shutdown, "{}", MsgType::Done)
            .map(|_| ())
    }

    fn send(&mut self, msg: MsgType, payload: &str) -> Result<(), ClientError> {
        write_frame(&mut self.stream, msg, payload)
            .map_err(|e| ClientError::local(format!("send {}: {e}", msg.name())))
    }

    fn recv(&mut self) -> Result<(MsgType, Value), ClientError> {
        self.recv_raw().map(|(m, v, _)| (m, v))
    }

    /// Like [`Client::recv`] but also returns the verbatim payload text.
    fn recv_raw(&mut self) -> Result<(MsgType, Value, String), ClientError> {
        loop {
            match read_frame(&mut self.stream) {
                Ok(f) => {
                    let v = jsonv::parse(&f.payload).map_err(|e| {
                        ClientError::local(format!("bad {} payload: {e}", f.msg.name()))
                    })?;
                    if f.msg == MsgType::Error {
                        // Request-level error: surface code + message. A
                        // job-scoped run-failed is handled by the caller.
                        let code = v
                            .get("code")
                            .and_then(Value::as_str)
                            .and_then(ErrorCode::from_label);
                        if code != Some(ErrorCode::RunFailed) {
                            return Err(ClientError {
                                code,
                                message: v
                                    .get("message")
                                    .and_then(Value::as_str)
                                    .unwrap_or("server error")
                                    .to_string(),
                            });
                        }
                    }
                    return Ok((f.msg, v, f.payload));
                }
                Err(FrameError::IdleTimeout) => {
                    return Err(ClientError::local("timed out waiting for the server"))
                }
                Err(e) => return Err(ClientError::local(e.to_string())),
            }
        }
    }

    fn roundtrip(
        &mut self,
        msg: MsgType,
        payload: &str,
        expect: MsgType,
    ) -> Result<Value, ClientError> {
        self.send(msg, payload)?;
        let (got, v) = self.recv()?;
        if got != expect {
            return Err(ClientError::local(format!(
                "expected {}, got {}",
                expect.name(),
                got.name()
            )));
        }
        Ok(v)
    }

    fn consume_submission(
        &mut self,
        on_event: &mut impl FnMut(&Event),
    ) -> Result<Outcome, ClientError> {
        let mut outcome = Outcome::default();
        loop {
            let (msg, v) = self.recv()?;
            match msg {
                MsgType::Accepted => {
                    let ev = Event::Accepted {
                        jobs: v.get("jobs").and_then(Value::as_u64).unwrap_or(0) as usize,
                        cached: v.get("cached").and_then(Value::as_u64).unwrap_or(0) as usize,
                    };
                    on_event(&ev);
                }
                MsgType::Progress => {
                    let ev = Event::Progress {
                        job: v.get("job").and_then(Value::as_u64).unwrap_or(0) as usize,
                        completed: v.get("completed").and_then(Value::as_u64).unwrap_or(0) as usize,
                        total: v.get("total").and_then(Value::as_u64).unwrap_or(0) as usize,
                        label: v
                            .get("label")
                            .and_then(Value::as_str)
                            .unwrap_or("")
                            .to_string(),
                        cached: v.get("cached") == Some(&Value::Bool(true)),
                        ok: v.get("ok") != Some(&Value::Bool(false)),
                    };
                    on_event(&ev);
                }
                MsgType::Report => {
                    let report = JobReport {
                        job: v.get("job").and_then(Value::as_u64).unwrap_or(0) as usize,
                        label: v
                            .get("label")
                            .and_then(Value::as_str)
                            .unwrap_or("")
                            .to_string(),
                        key: v.get("key").and_then(Value::as_str).unwrap_or("").to_string(),
                        cached: v.get("cached") == Some(&Value::Bool(true)),
                        doc: v.get("doc").and_then(Value::as_str).unwrap_or("").to_string(),
                    };
                    if report.cached {
                        outcome.cached += 1;
                    }
                    outcome.reports.push(report);
                }
                MsgType::Error => {
                    // Only job-scoped run-failed reaches here (see recv).
                    outcome.failed += 1;
                    let ev = Event::JobFailed {
                        job: v.get("job").and_then(Value::as_u64).unwrap_or(0) as usize,
                        message: v
                            .get("message")
                            .and_then(Value::as_str)
                            .unwrap_or("")
                            .to_string(),
                    };
                    on_event(&ev);
                }
                MsgType::Done => {
                    outcome.reports.sort_by_key(|r| r.job);
                    return Ok(outcome);
                }
                other => {
                    return Err(ClientError::local(format!(
                        "unexpected {} during submission",
                        other.name()
                    )))
                }
            }
        }
    }
}
