//! `cohesiond` — a long-running Cohesion simulation service.
//!
//! The pieces, bottom-up:
//!
//! - [`wire`] — the `cohesion-wire/v1` framing and message/error
//!   vocabulary (length-prefixed, tagged, JSON payloads). The normative
//!   spec lives in `docs/cohesiond.md`; a test cross-checks the doc's
//!   tables against [`wire::MsgType::ALL`] and [`wire::ErrorCode::ALL`].
//! - [`request`] — validated run/sweep requests and their canonical
//!   string form, the input to cache keying.
//! - [`cache`] — the content-addressed run cache: 128-bit keys over
//!   `(code version, canonical request)`, optional on-disk persistence,
//!   LRU bounded, hit/miss accounting.
//! - [`runner`] — executes one request into its byte-exact
//!   `cohesion-metrics/v1` document (the cache value).
//! - [`server`] — the TCP daemon: per-connection threads, a bounded
//!   [`cohesion_testkit::pool::WorkerPool`] for simulation jobs,
//!   backpressure, graceful drain.
//! - [`client`] — a blocking client used by the `cohesion` CLI, the
//!   `cohesion_loadgen` load generator, and the end-to-end tests.
//!
//! Everything is std-only, in keeping with the workspace's
//! zero-dependency rule.

#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod log;
pub mod request;
pub mod runner;
pub mod server;
pub mod wire;
