//! Structured single-line `key=value` stderr logging for `cohesiond`.
//!
//! Every line the daemon emits has the shape
//!
//! ```text
//! cohesiond event=<what> key=value key="quoted value" ...
//! ```
//!
//! so operators can grep one event class (`event=conn-error`) or one
//! request (`req=42`) out of a busy log. Values containing spaces,
//! quotes, or `=` are double-quoted with backslash escapes; everything
//! else is emitted bare. Ordering is exactly the caller's field order —
//! lines are deterministic given the same fields, which is what the unit
//! tests pin.
//!
//! This is stderr-only operational output: nothing here feeds any
//! deterministic document, so wall-clock values are fine to log.

/// Formats one log line (without the trailing newline): the `cohesiond`
/// prefix, the event, then each field in order.
pub fn format_line(event: &str, fields: &[(&str, String)]) -> String {
    let mut out = format!("cohesiond event={}", quote(event));
    for (key, value) in fields {
        out.push(' ');
        out.push_str(key);
        out.push('=');
        out.push_str(&quote(value));
    }
    out
}

/// Emits one structured line to stderr.
pub fn log(event: &str, fields: &[(&str, String)]) {
    eprintln!("{}", format_line(event, fields));
}

/// Quotes a value when it contains characters that would break
/// whitespace-splitting (`space`, `"`, `=`, control characters); bare
/// otherwise. Empty values are quoted so the key is visibly present.
fn quote(value: &str) -> String {
    let needs_quoting = value.is_empty()
        || value
            .chars()
            .any(|c| c.is_whitespace() || c == '"' || c == '=' || c == '\\' || (c as u32) < 0x20);
    if !needs_quoting {
        return value.to_string();
    }
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_values_stay_bare() {
        let line = format_line("accept", &[("conn", "7".into()), ("peer", "1.2.3.4:80".into())]);
        assert_eq!(line, "cohesiond event=accept conn=7 peer=1.2.3.4:80");
    }

    #[test]
    fn messy_values_are_quoted_and_escaped() {
        let line = format_line(
            "conn-error",
            &[("conn", "3".into()), ("error", "bad \"frame\"\nx=y".into())],
        );
        assert_eq!(
            line,
            "cohesiond event=conn-error conn=3 error=\"bad \\\"frame\\\"\\nx=y\""
        );
    }

    #[test]
    fn empty_values_are_visible() {
        assert_eq!(format_line("x", &[("k", String::new())]), "cohesiond event=x k=\"\"");
    }
}
