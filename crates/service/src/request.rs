//! Run and sweep requests: validation, canonical form, JSON codec.
//!
//! A [`RunRequest`] is the unit the cache is keyed on: one kernel, one
//! problem scale, one machine size, one design point, one trace seed.
//! [`RunRequest::canonical`] renders it as a stable, order-fixed string —
//! that string (plus the code version) is what gets hashed into the cache
//! key, so two requests that mean the same run always collide and two
//! that differ in any field never do.

use cohesion::config::{DesignPoint, DirectoryVariant};
use cohesion_bench::jsonv::Value;
use cohesion_kernels::{Scale, KERNEL_NAMES};

use crate::wire::json_escape;

/// Machine sizes a request may ask for (the scaled-machine constructor
/// handles anything in range; 1024 is the paper's full Table 3 machine).
pub const MAX_CORES: u32 = 1024;

/// One simulation request — the cache-key domain.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunRequest {
    /// Kernel name (one of [`KERNEL_NAMES`]).
    pub kernel: String,
    /// Problem scale.
    pub scale: Scale,
    /// Cores to simulate (`1..=1024`).
    pub cores: u32,
    /// Design-point spec, canonical form (see [`parse_point`]).
    pub point: String,
    /// Trace seed perturbing kernel input generation (0 = paper inputs).
    pub seed: u64,
    /// Host threads sharding the single simulation (default 1; 0 means
    /// *auto*: the executor picks a count from the host's parallelism).
    /// An execution hint only: the sharded executor's determinism
    /// contract makes the report byte-identical at any shard count, so
    /// this field is deliberately excluded from [`RunRequest::canonical`]
    /// — the same run at different shard counts shares one cache entry,
    /// and the count auto resolves to never appears in any document.
    pub shards: u32,
}

impl RunRequest {
    /// Validates every field and canonicalizes the point spec.
    ///
    /// # Errors
    ///
    /// A description of the first invalid field.
    pub fn validate(&self) -> Result<RunRequest, String> {
        if !KERNEL_NAMES.contains(&self.kernel.as_str()) {
            return Err(format!(
                "unknown kernel {:?}; valid kernels: {}",
                self.kernel,
                KERNEL_NAMES.join(", ")
            ));
        }
        if self.cores == 0 || self.cores > MAX_CORES {
            return Err(format!("cores must be 1..={MAX_CORES}, got {}", self.cores));
        }
        let dp = parse_point(&self.point)?;
        Ok(RunRequest {
            point: point_spec(&dp),
            ..self.clone()
        })
    }

    /// The parsed design point (call [`RunRequest::validate`] first).
    ///
    /// # Errors
    ///
    /// The parse error for an invalid spec.
    pub fn design_point(&self) -> Result<DesignPoint, String> {
        parse_point(&self.point)
    }

    /// The stable string the cache key hashes: every *result-bearing*
    /// field, fixed order, unambiguous separators. `shards` is absent on
    /// purpose: it cannot change the simulated results, so including it
    /// would split one logical run across cache entries.
    pub fn canonical(&self) -> String {
        format!(
            "kernel={};scale={};cores={};point={};seed={}",
            self.kernel,
            scale_name(self.scale),
            self.cores,
            self.point,
            self.seed
        )
    }

    /// The request as a `submit-run` JSON payload. The default shard
    /// count (1) is omitted so payloads from before sharding existed stay
    /// byte-identical; the auto sentinel (0) round-trips literally.
    pub fn to_json(&self) -> String {
        let shards = if self.shards != 1 {
            format!(", \"shards\": {}", self.shards)
        } else {
            String::new()
        };
        format!(
            "{{\"kernel\": \"{}\", \"scale\": \"{}\", \"cores\": {}, \"point\": \"{}\", \"seed\": {}{shards}}}",
            json_escape(&self.kernel),
            scale_name(self.scale),
            self.cores,
            json_escape(&self.point),
            self.seed
        )
    }

    /// Parses a `submit-run` payload (already JSON-decoded).
    ///
    /// # Errors
    ///
    /// A description of the missing or ill-typed field.
    pub fn from_json(v: &Value) -> Result<RunRequest, String> {
        Ok(RunRequest {
            kernel: str_field(v, "kernel")?,
            scale: parse_scale(&str_field(v, "scale")?)?,
            cores: u64_field(v, "cores")? as u32,
            point: str_field(v, "point")?,
            seed: u64_field(v, "seed").unwrap_or(0),
            shards: u64_field(v, "shards").unwrap_or(1) as u32,
        })
    }
}

/// A `kernels × points` sweep at one scale/core-count/seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// Kernel names (each one of [`KERNEL_NAMES`]).
    pub kernels: Vec<String>,
    /// Design-point specs.
    pub points: Vec<String>,
    /// Problem scale.
    pub scale: Scale,
    /// Cores to simulate.
    pub cores: u32,
    /// Trace seed.
    pub seed: u64,
    /// Host threads sharding each simulation (see [`RunRequest::shards`]).
    pub shards: u32,
}

impl SweepRequest {
    /// Expands into the flat run list, kernels-major (the same order the
    /// figure harness uses), validating every element.
    ///
    /// # Errors
    ///
    /// The first invalid kernel or point spec, or an empty dimension.
    pub fn expand(&self) -> Result<Vec<RunRequest>, String> {
        if self.kernels.is_empty() || self.points.is_empty() {
            return Err("sweep needs at least one kernel and one point".into());
        }
        let mut runs = Vec::with_capacity(self.kernels.len() * self.points.len());
        for k in &self.kernels {
            for p in &self.points {
                runs.push(
                    RunRequest {
                        kernel: k.clone(),
                        scale: self.scale,
                        cores: self.cores,
                        point: p.clone(),
                        seed: self.seed,
                        shards: self.shards,
                    }
                    .validate()?,
                );
            }
        }
        Ok(runs)
    }

    /// The request as a `submit-sweep` JSON payload. Like
    /// [`RunRequest::to_json`], a shard count of 1 is omitted.
    pub fn to_json(&self) -> String {
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .map(|k| format!("\"{}\"", json_escape(k)))
            .collect();
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| format!("\"{}\"", json_escape(p)))
            .collect();
        let shards = if self.shards != 1 {
            format!(", \"shards\": {}", self.shards)
        } else {
            String::new()
        };
        format!(
            "{{\"kernels\": [{}], \"points\": [{}], \"scale\": \"{}\", \"cores\": {}, \"seed\": {}{shards}}}",
            kernels.join(", "),
            points.join(", "),
            scale_name(self.scale),
            self.cores,
            self.seed
        )
    }

    /// Parses a `submit-sweep` payload (already JSON-decoded).
    ///
    /// # Errors
    ///
    /// A description of the missing or ill-typed field.
    pub fn from_json(v: &Value) -> Result<SweepRequest, String> {
        let list = |name: &str| -> Result<Vec<String>, String> {
            v.get(name)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("missing array field {name:?}"))?
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{name:?} elements must be strings"))
                })
                .collect()
        };
        Ok(SweepRequest {
            kernels: list("kernels")?,
            points: list("points")?,
            scale: parse_scale(&str_field(v, "scale")?)?,
            cores: u64_field(v, "cores")? as u32,
            seed: u64_field(v, "seed").unwrap_or(0),
            shards: u64_field(v, "shards").unwrap_or(1) as u32,
        })
    }
}

fn str_field(v: &Value, name: &str) -> Result<String, String> {
    v.get(name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {name:?}"))
}

fn u64_field(v: &Value, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing non-negative integer field {name:?}"))
}

/// The wire name of a scale.
pub fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
    }
}

/// Parses a wire scale name (case-insensitive, like the figure binaries).
///
/// # Errors
///
/// Names anything other than `tiny|small|medium`.
pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s.to_ascii_lowercase().as_str() {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "medium" => Ok(Scale::Medium),
        other => Err(format!("scale must be tiny|small|medium, got {other:?}")),
    }
}

/// Default sparse-directory geometry for specs that omit `:ENTRIESxWAYS`
/// (the §4 realistic configuration).
pub const DEFAULT_DIR: (u32, u32) = (16 * 1024, 128);

/// Parses a design-point spec.
///
/// Base names: `swcc`, `hwcc-ideal`, `hwcc-real`, `hwcc-dir4b`,
/// `cohesion`, `cohesion-dir4b`. The four directory-backed points accept
/// an optional `:ENTRIESxWAYS` suffix (default `16384x128`), e.g.
/// `cohesion:8192x64`.
///
/// # Errors
///
/// Unknown base name, malformed geometry, or a geometry suffix on a
/// directoryless point.
pub fn parse_point(spec: &str) -> Result<DesignPoint, String> {
    let (base, geom) = match spec.split_once(':') {
        Some((b, g)) => (b, Some(g)),
        None => (spec, None),
    };
    let (entries, ways) = match geom {
        None => DEFAULT_DIR,
        Some(g) => {
            let (e, w) = g
                .split_once('x')
                .ok_or_else(|| format!("geometry must be ENTRIESxWAYS, got {g:?}"))?;
            let parse = |s: &str, what: &str| {
                s.parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("{what} must be a positive integer, got {s:?}"))
            };
            (parse(e, "entries")?, parse(w, "ways")?)
        }
    };
    let dp = match base.to_ascii_lowercase().as_str() {
        "swcc" => DesignPoint::swcc(),
        "hwcc-ideal" => DesignPoint::hwcc_ideal(),
        "hwcc-real" => DesignPoint::hwcc_real(entries, ways),
        "hwcc-dir4b" => DesignPoint::hwcc_dir4b(entries, ways),
        "cohesion" => DesignPoint::cohesion(entries, ways),
        "cohesion-dir4b" => DesignPoint::cohesion_dir4b(entries, ways),
        other => {
            return Err(format!(
                "unknown design point {other:?}; valid: swcc, hwcc-ideal, \
                 hwcc-real, hwcc-dir4b, cohesion, cohesion-dir4b \
                 (directory-backed points accept :ENTRIESxWAYS)"
            ))
        }
    };
    if geom.is_some() && matches!(dp.directory, DirectoryVariant::None | DirectoryVariant::FullMapInfinite) {
        return Err(format!("{base:?} takes no directory geometry"));
    }
    Ok(dp)
}

/// The canonical spec for a design point — the inverse of [`parse_point`].
pub fn point_spec(dp: &DesignPoint) -> String {
    use cohesion_runtime::api::CohMode;
    match (dp.mode, dp.directory) {
        (CohMode::SWcc, DirectoryVariant::None) => "swcc".into(),
        (CohMode::HWcc, DirectoryVariant::FullMapInfinite) => "hwcc-ideal".into(),
        (CohMode::HWcc, DirectoryVariant::Sparse { entries, ways }) => {
            format!("hwcc-real:{entries}x{ways}")
        }
        (CohMode::HWcc, DirectoryVariant::Dir4B { entries, ways }) => {
            format!("hwcc-dir4b:{entries}x{ways}")
        }
        (CohMode::Cohesion, DirectoryVariant::Sparse { entries, ways }) => {
            format!("cohesion:{entries}x{ways}")
        }
        (CohMode::Cohesion, DirectoryVariant::Dir4B { entries, ways }) => {
            format!("cohesion-dir4b:{entries}x{ways}")
        }
        (mode, dir) => format!("{mode:?}/{dir:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_bench::jsonv;

    fn req() -> RunRequest {
        RunRequest {
            kernel: "sobel".into(),
            scale: Scale::Tiny,
            cores: 16,
            point: "swcc".into(),
            seed: 7,
            shards: 1,
        }
    }

    #[test]
    fn canonical_is_stable_and_field_sensitive() {
        let base = req().canonical();
        assert_eq!(base, "kernel=sobel;scale=tiny;cores=16;point=swcc;seed=7");
        let mut other = req();
        other.seed = 8;
        assert_ne!(base, other.canonical());
    }

    /// `shards` is an execution hint: it never reaches the canonical
    /// string (so shard counts share cache entries), and the default is
    /// omitted from the wire payload (so pre-sharding payload bytes are
    /// unchanged).
    #[test]
    fn shards_are_not_canonical_and_default_is_elided() {
        let mut sharded = req();
        sharded.shards = 4;
        assert_eq!(req().canonical(), sharded.canonical());
        assert!(!req().to_json().contains("shards"));
        assert!(sharded.to_json().contains("\"shards\": 4"));
        let v = jsonv::parse(&sharded.to_json()).unwrap();
        assert_eq!(RunRequest::from_json(&v).unwrap(), sharded);
        let mut auto = req();
        auto.shards = 0;
        assert!(auto.validate().is_ok(), "0 is the auto sentinel");
        assert_eq!(req().canonical(), auto.canonical());
        assert!(auto.to_json().contains("\"shards\": 0"));
        let v = jsonv::parse(&auto.to_json()).unwrap();
        assert_eq!(RunRequest::from_json(&v).unwrap(), auto);
    }

    #[test]
    fn json_round_trip() {
        let r = req();
        let v = jsonv::parse(&r.to_json()).unwrap();
        assert_eq!(RunRequest::from_json(&v).unwrap(), r);
        let s = SweepRequest {
            kernels: vec!["sobel".into(), "heat".into()],
            points: vec!["swcc".into(), "cohesion:16384x128".into()],
            scale: Scale::Tiny,
            cores: 16,
            seed: 0,
            shards: 1,
        };
        let v = jsonv::parse(&s.to_json()).unwrap();
        assert_eq!(SweepRequest::from_json(&v).unwrap(), s);
        assert_eq!(s.expand().unwrap().len(), 4);
    }

    #[test]
    fn point_specs_round_trip_canonically() {
        for spec in [
            "swcc",
            "hwcc-ideal",
            "hwcc-real:16384x128",
            "hwcc-dir4b:16384x128",
            "cohesion:16384x128",
            "cohesion-dir4b:8192x64",
        ] {
            let dp = parse_point(spec).unwrap();
            assert_eq!(point_spec(&dp), spec, "spec {spec} not canonical");
        }
        // default geometry is filled in by canonicalization
        assert_eq!(
            point_spec(&parse_point("cohesion").unwrap()),
            "cohesion:16384x128"
        );
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut r = req();
        r.kernel = "fft".into();
        assert!(r.validate().unwrap_err().contains("unknown kernel"));
        let mut r = req();
        r.cores = 0;
        assert!(r.validate().is_err());
        let mut r = req();
        r.point = "swcc:16x2".into();
        assert!(r.validate().unwrap_err().contains("no directory geometry"));
        assert!(parse_point("cohesion:0x4").is_err());
        assert!(parse_point("warp").is_err());
        assert!(parse_scale("huge").is_err());
    }
}
