//! Executing a validated [`RunRequest`] into its cacheable report.
//!
//! The report is the same `cohesion-metrics/v1` JSON document the figure
//! binaries write with `--metrics-out`, built from the same
//! [`cohesion_bench::harness`] pieces (config construction, run labels,
//! document renderer) — one run per document, telemetry always armed.
//! Because the simulator is deterministic, the document is a pure
//! function of the request, which is exactly what lets the cache serve
//! hits byte-identically.

use cohesion_bench::harness::{design_label, metrics_document, Options};
use cohesion_kernels::kernel_by_name_seeded;

use crate::request::RunRequest;

/// Runs the simulation for `req` (which must be validated) and renders
/// the single-run `cohesion-metrics/v1` document.
///
/// Unlike [`cohesion_bench::harness::run`], this never touches the
/// harness's global metrics sink — `cohesiond` serves many clients
/// concurrently and each job's snapshot must stay with its own request.
///
/// # Errors
///
/// A human-readable description of the failed run (invalid design point,
/// golden-verification mismatch, machine error).
pub fn execute(req: &RunRequest) -> Result<String, String> {
    let dp = req.design_point()?;
    let opts = Options {
        cores: req.cores,
        scale: req.scale,
        kernels: vec![req.kernel.clone()],
        jobs: 1,
        shards: req.shards,
        seed: req.seed,
        metrics_out: None,
        trace_out: None,
    };
    let mut cfg = opts.config(dp);
    cfg.metrics = true;
    let mut wl = kernel_by_name_seeded(&req.kernel, req.scale, req.seed);
    let report = cohesion::run::run_workload(&cfg, wl.as_mut())
        .map_err(|e| format!("{} under {} failed: {e}", req.kernel, req.point))?;
    let snap = report
        .metrics
        .as_ref()
        .expect("metrics were armed")
        .to_json();
    let label = format!("{} @ {}", req.kernel, design_label(dp));
    Ok(metrics_document("cohesiond", &opts, &[(label, snap)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_kernels::Scale;

    fn req(seed: u64) -> RunRequest {
        RunRequest {
            kernel: "sobel".into(),
            scale: Scale::Tiny,
            cores: 16,
            point: "swcc".into(),
            seed,
            shards: 1,
        }
    }

    #[test]
    fn execute_is_deterministic_and_seed_sensitive() {
        let a = execute(&req(0)).unwrap();
        let b = execute(&req(0)).unwrap();
        assert_eq!(a, b, "same request must produce byte-identical documents");
        let c = execute(&req(1)).unwrap();
        assert_ne!(a, c, "a different trace seed must change the simulation");
        assert!(a.contains("\"schema\": \"cohesion-metrics/v1\""));
        assert!(c.contains("\"seed\": 1"));
    }
}
