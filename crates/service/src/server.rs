//! The `cohesiond` server: accept loop, per-connection protocol driver,
//! job scheduling, and graceful drain.
//!
//! One OS thread per connection reads frames and answers them in order;
//! simulation jobs never run on connection threads — they are submitted
//! to a shared [`WorkerPool`] whose bounded queue is the backpressure
//! boundary (a full queue is a `queue-full` wire error, not an unbounded
//! buffer). The run cache sits in front of the pool: a submission first
//! partitions into cache hits (answered immediately, byte-identical to
//! the original computation) and misses (scheduled).
//!
//! Shutdown — via a `shutdown` frame or the daemon's SIGTERM handler
//! flipping the [`StopHandle`] — stops the accept loop, lets every open
//! connection finish its in-flight request, drains the pool, and returns
//! a [`ServerSummary`].

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use cohesion_bench::jsonv;
use cohesion_testkit::pool::{SubmitError, WorkerPool};

use crate::cache::{CacheKey, CacheStats, RunCache, CODE_VERSION};
use crate::log;
use crate::request::{RunRequest, SweepRequest};
use crate::runner;
use crate::wire::{
    error_payload, json_escape, read_frame, write_frame, ErrorCode, FrameError, MsgType,
    WIRE_VERSION,
};

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7411` (`:0` picks a free port).
    pub addr: String,
    /// Simulation worker threads (the pool the jobs run on).
    pub workers: usize,
    /// Bounded job-queue capacity; beyond it submissions get `queue-full`.
    pub queue_cap: usize,
    /// Run-cache directory; `None` keeps the cache in memory only.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Run-cache entry cap (LRU beyond it).
    pub cache_entries: usize,
    /// How long a connection may sit idle (no frame started) before the
    /// server closes it.
    pub idle_timeout: Duration,
    /// How long shutdown waits for open connections before proceeding.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7411".into(),
            workers: cohesion_testkit::pool::default_jobs(),
            queue_cap: 256,
            cache_dir: None,
            cache_entries: 4096,
            idle_timeout: Duration::from_secs(60),
            drain_grace: Duration::from_secs(10),
        }
    }
}

/// A cloneable handle that asks a running [`Server`] to drain and exit.
#[derive(Debug, Clone, Default)]
pub struct StopHandle(Arc<AtomicBool>);

impl StopHandle {
    /// Requests the drain. Idempotent.
    pub fn stop(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether a drain has been requested.
    pub fn is_stopped(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// What the server did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone, Copy)]
pub struct ServerSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Simulation jobs executed (cache misses that ran).
    pub jobs_executed: u64,
    /// Final cache statistics.
    pub cache: CacheStats,
}

/// What a scheduled job needs: shared separately from [`Shared`] so job
/// closures can own an `Arc` of it (`'static`) without touching the pool
/// that runs them.
struct JobCtx {
    cache: RunCache,
    jobs_executed: AtomicU64,
}

/// Operational counters behind the `stats` message: request and error
/// tallies by type, plus the request-ID generator. Everything here is
/// monotonic and lock-free; point-in-time figures (queue depth, busy
/// workers, cache stats) are read from their owners at reply time.
struct OpStats {
    started: Instant,
    /// Next request ID; every client frame after `hello` gets one.
    next_request: AtomicU64,
    /// Frames handled, indexed by the message's position in
    /// [`MsgType::ALL`] (only client→server slots are ever non-zero).
    requests: [AtomicU64; MsgType::ALL.len()],
    /// Error frames sent, indexed by the code's position in
    /// [`ErrorCode::ALL`].
    errors: [AtomicU64; ErrorCode::ALL.len()],
}

impl OpStats {
    fn new() -> OpStats {
        OpStats {
            started: Instant::now(),
            next_request: AtomicU64::new(0),
            requests: std::array::from_fn(|_| AtomicU64::new(0)),
            errors: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn count_request(&self, msg: MsgType) {
        if let Some(i) = MsgType::ALL.iter().position(|m| *m == msg) {
            self.requests[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn count_error(&self, code: ErrorCode) {
        if let Some(i) = ErrorCode::ALL.iter().position(|c| *c == code) {
            self.errors[i].fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    ctx: Arc<JobCtx>,
    pool: WorkerPool,
    stop: StopHandle,
    /// Serializes queue-capacity checks with batch submission so a sweep
    /// is admitted atomically (all jobs or `queue-full`).
    submit_gate: Mutex<()>,
    active_conns: AtomicUsize,
    connections: AtomicU64,
    ops: OpStats,
}

/// A bound, not-yet-running `cohesiond` server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the cache and worker pool.
    ///
    /// # Errors
    ///
    /// Bind or cache-directory failures.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let cache = match &cfg.cache_dir {
            Some(dir) => RunCache::at_dir(dir.clone(), cfg.cache_entries)?,
            None => RunCache::in_memory(cfg.cache_entries),
        };
        let pool = WorkerPool::new(cfg.workers, cfg.queue_cap);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                ctx: Arc::new(JobCtx {
                    cache,
                    jobs_executed: AtomicU64::new(0),
                }),
                pool,
                stop: StopHandle::default(),
                submit_gate: Mutex::new(()),
                active_conns: AtomicUsize::new(0),
                connections: AtomicU64::new(0),
                ops: OpStats::new(),
            }),
        })
    }

    /// The bound address (useful with `:0`).
    ///
    /// # Errors
    ///
    /// Propagates the OS lookup failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] drain and return.
    pub fn stop_handle(&self) -> StopHandle {
        self.shared.stop.clone()
    }

    /// Serves until the stop handle fires, then drains: stop accepting,
    /// let open connections finish their in-flight request (bounded by
    /// `drain_grace`), finish every queued job, join the workers.
    ///
    /// # Errors
    ///
    /// Fatal listener failures only; per-connection errors are logged to
    /// stderr and answered on the wire where possible.
    pub fn run(self) -> std::io::Result<ServerSummary> {
        self.listener.set_nonblocking(true)?;
        let mut conn_threads = Vec::new();
        while !self.shared.stop.is_stopped() {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let conn = self.shared.connections.fetch_add(1, Ordering::Relaxed) + 1;
                    log::log(
                        "accept",
                        &[("conn", conn.to_string()), ("peer", peer.to_string())],
                    );
                    let shared = Arc::clone(&self.shared);
                    conn_threads
                        .push(std::thread::spawn(move || handle_connection(shared, stream, conn)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            conn_threads.retain(|h| !h.is_finished());
        }
        // Drain: connections notice the stop flag at their next idle poll
        // and close; give in-flight requests a grace window.
        let deadline = Instant::now() + self.shared.cfg.drain_grace;
        while self.shared.active_conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        for h in conn_threads {
            let _ = h.join();
        }
        let Server { shared, listener } = self;
        drop(listener);
        match Arc::try_unwrap(shared) {
            Ok(shared) => {
                shared.pool.drain();
                Ok(ServerSummary {
                    connections: shared.connections.load(Ordering::Relaxed),
                    jobs_executed: shared.ctx.jobs_executed.load(Ordering::Relaxed),
                    cache: shared.ctx.cache.stats(),
                })
            }
            Err(arc) => {
                // A connection outlived the grace window; queued jobs still
                // finish when the pool drops (drain-on-drop).
                log::log(
                    "drain-overrun",
                    &[(
                        "connections",
                        arc.active_conns.load(Ordering::Acquire).to_string(),
                    )],
                );
                Ok(ServerSummary {
                    connections: arc.connections.load(Ordering::Relaxed),
                    jobs_executed: arc.ctx.jobs_executed.load(Ordering::Relaxed),
                    cache: arc.ctx.cache.stats(),
                })
            }
        }
    }
}

/// Poll interval for idle reads — bounds how fast a connection notices
/// the drain flag.
const POLL: Duration = Duration::from_millis(100);

fn handle_connection(shared: Arc<Shared>, stream: TcpStream, conn: u64) {
    shared.active_conns.fetch_add(1, Ordering::AcqRel);
    let outcome = drive_connection(&shared, stream, conn);
    shared.active_conns.fetch_sub(1, Ordering::AcqRel);
    match outcome {
        Ok(()) => log::log("close", &[("conn", conn.to_string())]),
        Err(e) => log::log("conn-error", &[("conn", conn.to_string()), ("error", e)]),
    }
}

fn drive_connection(shared: &Shared, mut stream: TcpStream, conn: u64) -> Result<(), String> {
    // Response sequences are several small frames back to back; without
    // NODELAY, Nagle stalls each one behind the peer's delayed ACK.
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(POLL))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let mut hello_done = false;
    let mut idle = Duration::ZERO;
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => {
                idle = Duration::ZERO;
                f
            }
            Err(FrameError::IdleTimeout) => {
                idle += POLL;
                if shared.stop.is_stopped() || idle >= shared.cfg.idle_timeout {
                    return Ok(());
                }
                continue;
            }
            Err(FrameError::Closed) => return Ok(()),
            Err(e @ (FrameError::Io(_) | FrameError::BadUtf8)) => return Err(e.to_string()),
            Err(e) => {
                // Malformed but reportable: tell the client, then close —
                // the stream may be desynchronized.
                shared.ops.count_error(ErrorCode::BadFrame);
                let _ = send(
                    &mut stream,
                    MsgType::Error,
                    &error_payload(ErrorCode::BadFrame, &e.to_string()),
                );
                return Err(e.to_string());
            }
        };
        if !frame.msg.client_to_server() {
            shared.ops.count_error(ErrorCode::BadFrame);
            let _ = send(
                &mut stream,
                MsgType::Error,
                &error_payload(
                    ErrorCode::BadFrame,
                    &format!("{} is a server-to-client message", frame.msg.name()),
                ),
            );
            return Err(format!("client sent server tag {}", frame.msg.name()));
        }
        shared.ops.count_request(frame.msg);
        let req = shared.ops.next_request.fetch_add(1, Ordering::Relaxed) + 1;
        log::log(
            "request",
            &[
                ("conn", conn.to_string()),
                ("req", req.to_string()),
                ("msg", frame.msg.name().to_string()),
            ],
        );
        let payload = match jsonv::parse(&frame.payload) {
            Ok(v) => v,
            Err(e) => {
                shared.ops.count_error(ErrorCode::BadFrame);
                let _ = send(
                    &mut stream,
                    MsgType::Error,
                    &error_payload(ErrorCode::BadFrame, &format!("payload is not JSON: {e}")),
                );
                return Err("non-JSON payload".into());
            }
        };
        if !hello_done {
            match frame.msg {
                MsgType::Hello => {
                    let supported = payload
                        .get("versions")
                        .and_then(jsonv::Value::as_arr)
                        .map(|vs| {
                            vs.iter()
                                .filter_map(jsonv::Value::as_u64)
                                .any(|v| v == WIRE_VERSION as u64)
                        })
                        .unwrap_or(false);
                    if !supported {
                        shared.ops.count_error(ErrorCode::UnsupportedVersion);
                        let _ = send(
                            &mut stream,
                            MsgType::Error,
                            &error_payload(
                                ErrorCode::UnsupportedVersion,
                                &format!("server speaks only version {WIRE_VERSION}"),
                            ),
                        );
                        return Ok(());
                    }
                    send(
                        &mut stream,
                        MsgType::HelloAck,
                        &format!(
                            "{{\"version\": {WIRE_VERSION}, \"server\": \"cohesiond/{}\", \
                             \"code_version\": \"{}\", \"workers\": {}}}",
                            env!("CARGO_PKG_VERSION"),
                            json_escape(CODE_VERSION),
                            shared.cfg.workers
                        ),
                    )?;
                    hello_done = true;
                    continue;
                }
                other => {
                    shared.ops.count_error(ErrorCode::BadRequest);
                    let _ = send(
                        &mut stream,
                        MsgType::Error,
                        &error_payload(
                            ErrorCode::BadRequest,
                            &format!("first message must be hello, got {}", other.name()),
                        ),
                    );
                    return Ok(());
                }
            }
        }
        match frame.msg {
            MsgType::Hello => {
                send_error(shared, &mut stream, ErrorCode::BadRequest, "duplicate hello")?;
            }
            MsgType::Stats => {
                send(&mut stream, MsgType::StatsReply, &stats_payload(shared))?;
            }
            MsgType::Ping => {
                let s = shared.ctx.cache.stats();
                send(
                    &mut stream,
                    MsgType::Pong,
                    &format!(
                        "{{\"version\": {WIRE_VERSION}, \"jobs_executed\": {}, \
                         \"cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}, \"evictions\": {}}}}}",
                        shared.ctx.jobs_executed.load(Ordering::Relaxed),
                        s.hits,
                        s.misses,
                        s.entries,
                        s.evictions
                    ),
                )?;
            }
            MsgType::SubmitRun => match RunRequest::from_json(&payload).and_then(|r| r.validate()) {
                Ok(r) => serve_runs(shared, &mut stream, vec![r], conn, req)?,
                Err(e) => send_request_error(shared, &mut stream, &e)?,
            },
            MsgType::SubmitSweep => {
                match SweepRequest::from_json(&payload).and_then(|s| s.expand()) {
                    Ok(runs) => serve_runs(shared, &mut stream, runs, conn, req)?,
                    Err(e) => send_request_error(shared, &mut stream, &e)?,
                }
            }
            MsgType::FetchReport => {
                let key = payload
                    .get("key")
                    .and_then(jsonv::Value::as_str)
                    .ok_or(())
                    .and_then(|s| CacheKey::parse(s).map_err(|_| ()));
                match key {
                    Ok(key) => match shared.ctx.cache.get(key) {
                        Some(doc) => {
                            send(
                                &mut stream,
                                MsgType::Report,
                                &report_payload(0, "fetch", &key, true, &doc),
                            )?;
                            send(&mut stream, MsgType::Done, "{\"jobs\": 0, \"cached\": 1, \"failed\": 0}")?;
                        }
                        None => send_error(
                            shared,
                            &mut stream,
                            ErrorCode::NotFound,
                            &format!("no cached report for key {key}"),
                        )?,
                    },
                    Err(()) => send_error(
                        shared,
                        &mut stream,
                        ErrorCode::BadRequest,
                        "fetch-report needs a \"key\" of 32 hex digits",
                    )?,
                }
            }
            MsgType::Shutdown => {
                send(&mut stream, MsgType::Done, "{}")?;
                shared.stop.stop();
                return Ok(());
            }
            // Unreachable: server-to-client tags were rejected above.
            _ => unreachable!("server tags handled earlier"),
        }
    }
}

/// Serves a validated run list: cache hits answered immediately in input
/// order, misses scheduled on the pool and streamed in completion order.
/// `conn` and `req` identify the connection and request in the log — the
/// same `req` appears on the admission line, on every job's `run` line
/// (simulated on a pool worker), and on the final `reply` line, so one
/// grep follows a request accept→queue→cache→run→reply.
fn serve_runs(
    shared: &Shared,
    stream: &mut TcpStream,
    runs: Vec<RunRequest>,
    conn: u64,
    req: u64,
) -> Result<(), String> {
    let total = runs.len();
    let keyed: Vec<(RunRequest, CacheKey)> = runs
        .into_iter()
        .map(|r| {
            let k = CacheKey::for_request(&r);
            (r, k)
        })
        .collect();
    let hits: Vec<(usize, CacheKey, Arc<String>)> = keyed
        .iter()
        .enumerate()
        .filter_map(|(i, (_, k))| shared.ctx.cache.get(*k).map(|doc| (i, *k, doc)))
        .collect();
    let hit_count = hits.len();
    let hit_set: std::collections::HashSet<usize> = hits.iter().map(|(i, _, _)| *i).collect();
    let misses: Vec<(usize, RunRequest, CacheKey)> = keyed
        .iter()
        .enumerate()
        .filter(|(i, _)| !hit_set.contains(i))
        .map(|(i, (r, k))| (i, r.clone(), *k))
        .collect();

    // Admit the whole batch atomically under the submit gate: either every
    // miss is queued or the submission fails with queue-full / draining.
    let (tx, rx) = mpsc::channel::<(usize, CacheKey, String, Result<Arc<String>, String>)>();
    {
        let _gate = shared.submit_gate.lock().expect("submit gate poisoned");
        if shared.stop.is_stopped() {
            return send_error(shared, stream, ErrorCode::Draining, "cohesiond is draining");
        }
        if shared.pool.queued() + misses.len() > shared.cfg.queue_cap {
            return send_error(
                shared,
                stream,
                ErrorCode::QueueFull,
                &format!(
                    "queue has {} of {} slots used; {} more needed",
                    shared.pool.queued(),
                    shared.cfg.queue_cap,
                    misses.len()
                ),
            );
        }
        for (idx, run, key) in &misses {
            let tx = tx.clone();
            let idx = *idx;
            let key = *key;
            let run = run.clone();
            let ctx = Arc::clone(&shared.ctx);
            let label = format!("{} @ {}", run.kernel, run.point);
            let submit: Result<(), SubmitError> = shared.pool.submit(move || {
                // Double-check under the job: another connection may have
                // computed this key while we sat in the queue. `peek`
                // keeps the hit/miss statistics honest (the admission
                // lookup already counted this request's miss).
                let (outcome, how) = match ctx.cache.peek(key) {
                    Some(doc) => (Ok(doc), "cache"),
                    None => {
                        let outcome = runner::execute(&run);
                        ctx.jobs_executed.fetch_add(1, Ordering::Relaxed);
                        let outcome = outcome.map(|doc| {
                            ctx.cache.insert(key, doc.clone());
                            Arc::new(doc)
                        });
                        (outcome, "sim")
                    }
                };
                log::log(
                    "run",
                    &[
                        ("conn", conn.to_string()),
                        ("req", req.to_string()),
                        ("job", idx.to_string()),
                        ("label", label.clone()),
                        ("how", how.to_string()),
                        ("ok", outcome.is_ok().to_string()),
                    ],
                );
                let _ = tx.send((idx, key, label, outcome));
            });
            if let Err(e) = submit {
                // Raced another admission; already-queued jobs of this
                // batch still run and populate the cache.
                let code = match e {
                    SubmitError::Full => ErrorCode::QueueFull,
                    SubmitError::Draining => ErrorCode::Draining,
                };
                return send_error(shared, stream, code, &e.to_string());
            }
        }
    }
    drop(tx);
    log::log(
        "admit",
        &[
            ("conn", conn.to_string()),
            ("req", req.to_string()),
            ("jobs", total.to_string()),
            ("cached", hit_count.to_string()),
            ("queued", misses.len().to_string()),
        ],
    );

    send(
        stream,
        MsgType::Accepted,
        &format!(
            "{{\"jobs\": {total}, \"cached\": {hit_count}, \"queued\": {}}}",
            misses.len()
        ),
    )?;
    let mut completed = 0usize;
    let mut failed = 0usize;
    for (idx, key, doc) in hits {
        completed += 1;
        let label = format!("{} @ {}", keyed[idx].0.kernel, keyed[idx].0.point);
        send(
            stream,
            MsgType::Progress,
            &progress_payload(idx, &label, completed, total, true, true),
        )?;
        send(stream, MsgType::Report, &report_payload(idx, &label, &key, true, &doc))?;
    }
    for _ in 0..misses.len() {
        let (idx, key, label, outcome) = rx
            .recv()
            .map_err(|_| "worker dropped without reporting".to_string())?;
        completed += 1;
        let ok = outcome.is_ok();
        send(
            stream,
            MsgType::Progress,
            &progress_payload(idx, &label, completed, total, false, ok),
        )?;
        match outcome {
            Ok(doc) => {
                send(stream, MsgType::Report, &report_payload(idx, &label, &key, false, &doc))?
            }
            Err(e) => {
                failed += 1;
                shared.ops.count_error(ErrorCode::RunFailed);
                send(
                    stream,
                    MsgType::Error,
                    &format!(
                        "{{\"code\": \"{}\", \"message\": \"{}\", \"job\": {idx}}}",
                        ErrorCode::RunFailed.label(),
                        json_escape(&e)
                    ),
                )?;
            }
        }
    }
    log::log(
        "reply",
        &[
            ("conn", conn.to_string()),
            ("req", req.to_string()),
            ("jobs", total.to_string()),
            ("cached", hit_count.to_string()),
            ("failed", failed.to_string()),
        ],
    );
    send(
        stream,
        MsgType::Done,
        &format!("{{\"jobs\": {total}, \"cached\": {hit_count}, \"failed\": {failed}}}"),
    )
}

/// Builds the `stats-reply` payload: uptime, totals, request and error
/// counters by name (zero entries included so the shape is stable),
/// point-in-time queue/worker/cache figures.
fn stats_payload(shared: &Shared) -> String {
    let requests: Vec<String> = MsgType::ALL
        .iter()
        .enumerate()
        .filter(|(_, m)| m.client_to_server())
        .map(|(i, m)| {
            format!(
                "\"{}\": {}",
                m.name(),
                shared.ops.requests[i].load(Ordering::Relaxed)
            )
        })
        .collect();
    let errors: Vec<String> = ErrorCode::ALL
        .iter()
        .enumerate()
        .map(|(i, c)| {
            format!(
                "\"{}\": {}",
                c.label(),
                shared.ops.errors[i].load(Ordering::Relaxed)
            )
        })
        .collect();
    let s = shared.ctx.cache.stats();
    format!(
        "{{\"uptime_ms\": {}, \"connections\": {}, \"active_connections\": {}, \
         \"requests\": {{{}}}, \"errors\": {{{}}}, \
         \"queue\": {{\"depth\": {}, \"capacity\": {}}}, \
         \"workers\": {{\"total\": {}, \"busy\": {}}}, \
         \"jobs_executed\": {}, \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"insertions\": {}, \"evictions\": {}, \
         \"entries\": {}}}}}",
        shared.ops.started.elapsed().as_millis(),
        shared.connections.load(Ordering::Relaxed),
        shared.active_conns.load(Ordering::Acquire),
        requests.join(", "),
        errors.join(", "),
        shared.pool.queued(),
        shared.cfg.queue_cap,
        shared.cfg.workers,
        shared.pool.running(),
        shared.ctx.jobs_executed.load(Ordering::Relaxed),
        s.hits,
        s.misses,
        s.insertions,
        s.evictions,
        s.entries,
    )
}

fn progress_payload(
    idx: usize,
    label: &str,
    completed: usize,
    total: usize,
    cached: bool,
    ok: bool,
) -> String {
    format!(
        "{{\"job\": {idx}, \"label\": \"{}\", \"completed\": {completed}, \"total\": {total}, \
         \"cached\": {cached}, \"ok\": {ok}}}",
        json_escape(label)
    )
}

fn report_payload(idx: usize, label: &str, key: &CacheKey, cached: bool, doc: &str) -> String {
    format!(
        "{{\"job\": {idx}, \"label\": \"{}\", \"key\": \"{key}\", \"cached\": {cached}, \
         \"doc\": \"{}\"}}",
        json_escape(label),
        json_escape(doc)
    )
}

fn send(stream: &mut TcpStream, msg: MsgType, payload: &str) -> Result<(), String> {
    write_frame(stream, msg, payload).map_err(|e| format!("write {}: {e}", msg.name()))?;
    stream.flush().map_err(|e| e.to_string())
}

fn send_error(
    shared: &Shared,
    stream: &mut TcpStream,
    code: ErrorCode,
    message: &str,
) -> Result<(), String> {
    shared.ops.count_error(code);
    send(stream, MsgType::Error, &error_payload(code, message))
}

/// Maps a request-validation failure onto the most specific error code.
fn send_request_error(shared: &Shared, stream: &mut TcpStream, e: &str) -> Result<(), String> {
    let code = if e.contains("unknown kernel") {
        ErrorCode::UnknownKernel
    } else {
        ErrorCode::BadRequest
    };
    send_error(shared, stream, code, e)
}
