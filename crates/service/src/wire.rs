//! The `cohesion-wire/v1` protocol: framing, message types, error codes.
//!
//! Everything a client and `cohesiond` exchange is a **frame**:
//!
//! ```text
//! +----------------+--------+----------------------------------+
//! | length: u32 BE | tag:u8 | payload: UTF-8 JSON (length - 1) |
//! +----------------+--------+----------------------------------+
//! ```
//!
//! * `length` counts the tag byte plus the payload, **not** the length
//!   field itself, so an empty-payload frame has `length == 1`.
//! * `tag` selects the [`MsgType`]; client→server tags are `0x01..=0x7f`,
//!   server→client tags are `0x81..=0xff`.
//! * the payload is one JSON object (possibly `{}`), never an array or a
//!   bare scalar.
//!
//! Frames larger than [`MAX_FRAME`] are rejected without being read — a
//! malformed or hostile length prefix must not make the server allocate.
//! The full payload schema for every message type, the version-negotiation
//! handshake, and the error-code table live in `docs/cohesiond.md` — a
//! test (`tests/doc_sync.rs`) cross-checks that document against
//! [`MsgType::ALL`] and [`ErrorCode::ALL`] so the spec cannot drift from
//! the code.

use std::io::{self, Read, Write};

/// The protocol version this build speaks. Version negotiation: the
/// client's `hello` lists every version it supports; the server picks the
/// highest it also supports and echoes it in `hello-ack`, or answers
/// [`ErrorCode::UnsupportedVersion`] and closes.
pub const WIRE_VERSION: u32 = 1;

/// Hard upper bound on `length` (tag + payload bytes). Larger frames are
/// rejected with [`FrameError::TooLarge`] before any payload allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Every message type of `cohesion-wire/v1`, with its tag byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgType {
    /// Client→server: opens the session; payload lists supported versions.
    Hello = 0x01,
    /// Client→server: liveness probe.
    Ping = 0x02,
    /// Client→server: submit one `(kernel, scale, cores, point, seed)` run.
    SubmitRun = 0x03,
    /// Client→server: submit a `kernels × points` sweep.
    SubmitSweep = 0x04,
    /// Client→server: fetch a cached report by cache key, never simulating.
    FetchReport = 0x05,
    /// Client→server: ask the daemon to drain and exit.
    Shutdown = 0x06,
    /// Client→server: ask for the daemon's operational counters.
    Stats = 0x07,
    /// Server→client: accepts the session, names the negotiated version.
    HelloAck = 0x81,
    /// Server→client: answer to `ping`.
    Pong = 0x82,
    /// Server→client: a submission was validated and scheduled.
    Accepted = 0x83,
    /// Server→client: one job of a submission finished (or was served
    /// from cache); carries completion counts, not the report.
    Progress = 0x84,
    /// Server→client: one job's full `cohesion-metrics/v1` report.
    Report = 0x85,
    /// Server→client: a submission (or shutdown request) completed.
    Done = 0x86,
    /// Server→client: a structured failure; see [`ErrorCode`].
    Error = 0x87,
    /// Server→client: answer to `stats` — uptime, request/error counters,
    /// queue depth, worker busyness, cache statistics.
    StatsReply = 0x88,
}

impl MsgType {
    /// Every message type, client-to-server tags first, in tag order.
    pub const ALL: [MsgType; 15] = [
        MsgType::Hello,
        MsgType::Ping,
        MsgType::SubmitRun,
        MsgType::SubmitSweep,
        MsgType::FetchReport,
        MsgType::Shutdown,
        MsgType::Stats,
        MsgType::HelloAck,
        MsgType::Pong,
        MsgType::Accepted,
        MsgType::Progress,
        MsgType::Report,
        MsgType::Done,
        MsgType::Error,
        MsgType::StatsReply,
    ];

    /// The frame tag byte.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// The wire name used in `docs/cohesiond.md` and in CLI output.
    pub fn name(self) -> &'static str {
        match self {
            MsgType::Hello => "hello",
            MsgType::Ping => "ping",
            MsgType::SubmitRun => "submit-run",
            MsgType::SubmitSweep => "submit-sweep",
            MsgType::FetchReport => "fetch-report",
            MsgType::Shutdown => "shutdown",
            MsgType::Stats => "stats",
            MsgType::HelloAck => "hello-ack",
            MsgType::Pong => "pong",
            MsgType::Accepted => "accepted",
            MsgType::Progress => "progress",
            MsgType::Report => "report",
            MsgType::Done => "done",
            MsgType::Error => "error",
            MsgType::StatsReply => "stats-reply",
        }
    }

    /// `true` for tags a client sends, `false` for tags a server sends.
    pub fn client_to_server(self) -> bool {
        self.tag() < 0x80
    }

    /// Decodes a tag byte.
    pub fn from_tag(tag: u8) -> Option<MsgType> {
        MsgType::ALL.into_iter().find(|m| m.tag() == tag)
    }
}

/// Structured error codes carried by [`MsgType::Error`] payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame itself was unreadable: oversized length, unknown tag,
    /// non-UTF-8 or non-JSON payload, or a server-only tag sent by a
    /// client. The server closes the connection after this error.
    BadFrame,
    /// `hello` offered no version the server speaks (connection closes).
    UnsupportedVersion,
    /// The payload parsed but a field was missing or out of range.
    BadRequest,
    /// The requested kernel is not one of the eight evaluation kernels.
    UnknownKernel,
    /// The bounded job queue is full — shed load and retry later.
    QueueFull,
    /// The daemon is draining and no longer accepts new work.
    Draining,
    /// `fetch-report` named a cache key the server does not hold.
    NotFound,
    /// A simulation failed (golden-verification mismatch, machine error).
    RunFailed,
    /// Anything else; the message carries detail.
    Internal,
}

impl ErrorCode {
    /// Every error code, in documentation order.
    pub const ALL: [ErrorCode; 9] = [
        ErrorCode::BadFrame,
        ErrorCode::UnsupportedVersion,
        ErrorCode::BadRequest,
        ErrorCode::UnknownKernel,
        ErrorCode::QueueFull,
        ErrorCode::Draining,
        ErrorCode::NotFound,
        ErrorCode::RunFailed,
        ErrorCode::Internal,
    ];

    /// The wire label, e.g. `queue-full`.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownKernel => "unknown-kernel",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::Draining => "draining",
            ErrorCode::NotFound => "not-found",
            ErrorCode::RunFailed => "run-failed",
            ErrorCode::Internal => "internal",
        }
    }

    /// Decodes a wire label.
    pub fn from_label(label: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.label() == label)
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The message type from the tag byte.
    pub msg: MsgType,
    /// The JSON payload text, exactly as received.
    pub payload: String,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly (EOF before a length field).
    Closed,
    /// The read timed out while the connection was idle (no frame begun).
    /// The caller may keep the connection and poll again.
    IdleTimeout,
    /// An I/O failure, including timeouts that split a frame.
    Io(io::Error),
    /// The length field exceeded [`MAX_FRAME`].
    TooLarge(usize),
    /// `length == 0` — a frame must at least carry its tag byte.
    Empty,
    /// The tag byte is not a `cohesion-wire/v1` message type.
    UnknownTag(u8),
    /// The payload was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::IdleTimeout => write!(f, "idle timeout"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            FrameError::Empty => write!(f, "zero-length frame (no tag byte)"),
            FrameError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            FrameError::BadUtf8 => write!(f, "payload is not UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: `u32 BE length`, tag byte, payload bytes.
///
/// # Errors
///
/// Propagates I/O failures; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, msg: MsgType, payload: &str) -> io::Result<()> {
    let len = 1 + payload.len();
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_be_bytes());
    buf.push(msg.tag());
    buf.extend_from_slice(payload.as_bytes());
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame.
///
/// A timeout before the first header byte arrives is reported as
/// [`FrameError::IdleTimeout`] (the connection is still usable); EOF in
/// the same position is [`FrameError::Closed`]. Any failure *inside* a
/// frame — including a timeout that would desynchronize the stream — is
/// fatal to the connection.
///
/// # Errors
///
/// See [`FrameError`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; 4];
    // First header byte: distinguish clean EOF / idle timeout from a
    // mid-frame failure.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(FrameError::IdleTimeout)
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    header[0] = first[0];
    r.read_exact(&mut header[1..]).map_err(FrameError::Io)?;
    let len = u32::from_be_bytes(header) as usize;
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag).map_err(FrameError::Io)?;
    let msg = MsgType::from_tag(tag[0]).ok_or(FrameError::UnknownTag(tag[0]))?;
    let mut payload = vec![0u8; len - 1];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    let payload = String::from_utf8(payload).map_err(|_| FrameError::BadUtf8)?;
    Ok(Frame { msg, payload })
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builds an [`MsgType::Error`] payload.
pub fn error_payload(code: ErrorCode, message: &str) -> String {
    format!(
        "{{\"code\": \"{}\", \"message\": \"{}\"}}",
        code.label(),
        json_escape(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_and_direction_split() {
        let mut seen = std::collections::HashSet::new();
        for m in MsgType::ALL {
            assert!(seen.insert(m.tag()), "duplicate tag {:#04x}", m.tag());
            assert_eq!(MsgType::from_tag(m.tag()), Some(m));
            match m {
                MsgType::Hello
                | MsgType::Ping
                | MsgType::SubmitRun
                | MsgType::SubmitSweep
                | MsgType::FetchReport
                | MsgType::Shutdown
                | MsgType::Stats => assert!(m.client_to_server()),
                _ => assert!(!m.client_to_server()),
            }
        }
        assert_eq!(MsgType::from_tag(0x7e), None);
    }

    #[test]
    fn error_labels_round_trip() {
        for c in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_label(c.label()), Some(c));
        }
        assert_eq!(ErrorCode::from_label("nope"), None);
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Ping, "{}").unwrap();
        write_frame(&mut buf, MsgType::Report, "{\"doc\": \"x\\ny\"}").unwrap();
        let mut r = &buf[..];
        let f1 = read_frame(&mut r).unwrap();
        assert_eq!(f1.msg, MsgType::Ping);
        assert_eq!(f1.payload, "{}");
        let f2 = read_frame(&mut r).unwrap();
        assert_eq!(f2.msg, MsgType::Report);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.push(MsgType::Ping.tag());
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn zero_length_and_unknown_tag_rejected() {
        let zero = 0u32.to_be_bytes();
        assert!(matches!(read_frame(&mut &zero[..]), Err(FrameError::Empty)));
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.push(0x7e);
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(FrameError::UnknownTag(0x7e))
        ));
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Pong, "{\"x\": 1}").unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::Io(_))));
    }

    #[test]
    fn json_escape_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
