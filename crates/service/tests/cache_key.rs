//! Cache-key soundness: the cache is only correct because (a) keys are
//! a deterministic function of the request and (b) reports are a
//! deterministic function of the request, regardless of scheduling.
//! These tests pin both properties, including across worker counts —
//! the service equivalent of `--jobs 1` vs `--jobs 4`.

use std::time::Duration;

use cohesion_kernels::Scale;
use cohesion_service::cache::CacheKey;
use cohesion_service::client::Client;
use cohesion_service::request::{RunRequest, SweepRequest};
use cohesion_service::server::{Server, ServerConfig};

fn req(seed: u64) -> RunRequest {
    RunRequest {
        kernel: "stencil".into(),
        scale: Scale::Tiny,
        cores: 16,
        point: "cohesion:16384x128".into(),
        seed,
        shards: 1,
    }
}

#[test]
fn keys_are_deterministic_and_field_sensitive() {
    let a = CacheKey::for_request(&req(0));
    let b = CacheKey::for_request(&req(0));
    assert_eq!(a, b, "same request, same key");
    assert_eq!(a.to_string().len(), 32);
    assert_eq!(CacheKey::parse(&a.to_string()).unwrap(), a);

    // Every canonical field must perturb the key.
    assert_ne!(CacheKey::for_request(&req(1)), a, "seed must key the cache");
    let mut other = req(0);
    other.kernel = "heat".into();
    assert_ne!(CacheKey::for_request(&other), a);
    let mut other = req(0);
    other.cores = 32;
    assert_ne!(CacheKey::for_request(&other), a);
    let mut other = req(0);
    other.point = "swcc".into();
    assert_ne!(CacheKey::for_request(&other), a);
    let mut other = req(0);
    other.scale = Scale::Small;
    assert_ne!(CacheKey::for_request(&other), a);

    // ... and the one non-canonical field must NOT: shards is an
    // execution hint, so the same run at any shard count is one entry.
    let mut other = req(0);
    other.shards = 4;
    assert_eq!(CacheKey::for_request(&other), a, "shards must not key the cache");
    other.shards = 0; // auto: resolved host-side, never part of the key
    assert_eq!(CacheKey::for_request(&other), a, "auto shards must not key the cache");
}

/// The end-to-end shard contract on the service path: executing the same
/// request at shards=1, shards=4, and shards=auto (0) produces
/// byte-identical report documents, which is what makes the shared cache
/// key above sound. Auto resolves to a host-dependent count, so the
/// resolved number must never surface in the report either.
#[test]
fn reports_are_byte_identical_across_shard_counts() {
    let serial = cohesion_service::runner::execute(&req(0)).expect("shards=1");
    let mut sharded_req = req(0);
    sharded_req.shards = 4;
    let sharded = cohesion_service::runner::execute(&sharded_req).expect("shards=4");
    assert_eq!(
        serial, sharded,
        "shard count must be unobservable in the report bytes"
    );
    let mut auto_req = req(0);
    auto_req.shards = 0;
    let auto = cohesion_service::runner::execute(&auto_req).expect("shards=auto");
    assert_eq!(
        serial, auto,
        "the auto-resolved shard count must be unobservable in the report bytes"
    );
    assert!(
        !auto.contains("shards"),
        "the resolved shard count must not appear in the emitted document"
    );
}

/// Runs `sweep` on a fresh server with `workers` threads and returns
/// `(key, doc)` per job in submission order.
fn run_with_workers(workers: usize, sweep: &SweepRequest) -> Vec<(String, String)> {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let stop = server.stop_handle();
    let thread = std::thread::spawn(move || server.run().expect("run"));
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    client
        .set_reply_timeout(Duration::from_secs(120))
        .expect("timeout");
    let outcome = client.submit_sweep(sweep, |_| {}).expect("sweep");
    assert_eq!(outcome.failed, 0);
    stop.stop();
    thread.join().expect("server thread");
    outcome
        .reports
        .into_iter()
        .map(|r| (r.key, r.doc))
        .collect()
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let sweep = SweepRequest {
        kernels: vec!["sobel".into(), "gjk".into()],
        points: vec!["swcc".into(), "cohesion".into()],
        scale: Scale::Tiny,
        cores: 16,
        seed: 0,
        shards: 1,
    };
    let serial = run_with_workers(1, &sweep);
    let parallel = run_with_workers(4, &sweep);
    assert_eq!(serial.len(), 4);
    assert_eq!(
        serial, parallel,
        "scheduling must not leak into keys or report bytes"
    );
}

#[test]
fn same_request_twice_hits_and_changed_seed_misses() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let stop = server.stop_handle();
    let thread = std::thread::spawn(move || server.run().expect("run"));
    let mut client = Client::connect(&addr, Duration::from_secs(5)).expect("connect");
    client
        .set_reply_timeout(Duration::from_secs(120))
        .expect("timeout");

    let first = client.submit_run(&req(0), |_| {}).expect("first");
    let second = client.submit_run(&req(0), |_| {}).expect("second");
    assert_eq!(second.cached, 1, "identical request must be a hit");
    assert_eq!(first.reports[0].key, second.reports[0].key);
    assert_eq!(
        first.reports[0].doc, second.reports[0].doc,
        "hit must be byte-identical"
    );

    let reseeded = client.submit_run(&req(7), |_| {}).expect("reseeded");
    assert_eq!(reseeded.cached, 0, "changed seed must be a miss");
    assert_ne!(reseeded.reports[0].key, first.reports[0].key);
    assert_ne!(
        reseeded.reports[0].doc, first.reports[0].doc,
        "a different trace seed must change the simulation"
    );

    let pong = client.ping().expect("ping");
    assert_eq!(pong.jobs_executed, 2, "two distinct requests simulated");
    assert_eq!(pong.cache_hits, 1);
    stop.stop();
    thread.join().expect("server thread");
}
