//! Keeps `docs/cohesiond.md` honest: the message-type and error-code
//! tables in the spec are parsed out of the markdown and compared,
//! entry by entry, against [`MsgType::ALL`] and [`ErrorCode::ALL`].
//! Adding a message or error without documenting it (or vice versa)
//! fails here.

use std::collections::BTreeMap;

use cohesion_service::wire::{ErrorCode, MsgType};

fn spec_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/cohesiond.md");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Splits a markdown table row into trimmed cells, dropping the empty
/// leading/trailing cells produced by the outer pipes.
fn cells(row: &str) -> Vec<String> {
    let mut out: Vec<String> = row.split('|').map(|c| c.trim().to_string()).collect();
    if out.first().is_some_and(String::is_empty) {
        out.remove(0);
    }
    if out.last().is_some_and(String::is_empty) {
        out.pop();
    }
    out
}

fn strip_ticks(cell: &str) -> String {
    cell.trim_matches('`').to_string()
}

#[test]
fn message_type_table_matches_the_enum() {
    let text = spec_text();
    // Documented rows: | `0xNN` | `name` | C→S or S→C | payload |
    let mut documented: BTreeMap<u8, (String, bool)> = BTreeMap::new();
    for line in text.lines() {
        let c = cells(line);
        if c.len() == 4 && c[0].starts_with("`0x") {
            let tag_text = strip_ticks(&c[0]);
            let tag = u8::from_str_radix(tag_text.trim_start_matches("0x"), 16)
                .unwrap_or_else(|e| panic!("bad tag {tag_text:?} in spec: {e}"));
            let name = strip_ticks(&c[1]);
            let client_to_server = match c[2].as_str() {
                "C→S" => true,
                "S→C" => false,
                other => panic!("row for {name}: direction must be C→S or S→C, got {other:?}"),
            };
            assert!(
                !c[3].is_empty(),
                "row for {name}: payload column must describe the payload"
            );
            let clash = documented.insert(tag, (name.clone(), client_to_server));
            assert!(clash.is_none(), "tag {tag:#04x} documented twice");
        }
    }
    assert_eq!(
        documented.len(),
        MsgType::ALL.len(),
        "spec documents {} message types, the enum has {}",
        documented.len(),
        MsgType::ALL.len()
    );
    for m in MsgType::ALL {
        let (name, dir) = documented
            .get(&m.tag())
            .unwrap_or_else(|| panic!("{} (tag {:#04x}) is not in the spec table", m.name(), m.tag()));
        assert_eq!(name, m.name(), "spec names tag {:#04x} {name:?}", m.tag());
        assert_eq!(
            *dir,
            m.client_to_server(),
            "spec direction for {} disagrees with the enum",
            m.name()
        );
    }
}

#[test]
fn error_code_table_matches_the_enum() {
    let text = spec_text();
    // Documented rows: | `label` | meaning | connection fate |
    let mut documented: Vec<String> = Vec::new();
    for line in text.lines() {
        let c = cells(line);
        if c.len() == 3
            && c[0].starts_with('`')
            && ErrorCode::from_label(&strip_ticks(&c[0])).is_some()
        {
            assert!(!c[1].is_empty(), "error {} has no meaning column", c[0]);
            assert!(
                c[2].contains("closed") || c[2].contains("open"),
                "error {} must say whether the connection survives",
                c[0]
            );
            documented.push(strip_ticks(&c[0]));
        }
    }
    let mut expected: Vec<String> = ErrorCode::ALL.iter().map(|c| c.label().to_string()).collect();
    let mut got = documented.clone();
    expected.sort();
    got.sort();
    got.dedup();
    assert_eq!(
        got, expected,
        "spec error-code table disagrees with ErrorCode::ALL"
    );
}

/// The `shards` request field is documented exactly as implemented: it
/// appears in both submit payload rows and in the request-field list,
/// and the canonical form it is excluded from really excludes it.
#[test]
fn spec_documents_the_shards_hint() {
    let text = spec_text();
    let payload_rows: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("| `0x03`") || l.starts_with("| `0x04`"))
        .collect();
    assert_eq!(payload_rows.len(), 2, "both submit rows must be in the table");
    for row in payload_rows {
        assert!(row.contains("\"shards\""), "payload row must show shards: {row}");
    }
    assert!(
        text.contains("not part of the canonical form or the cache key"),
        "spec must state that shards never keys the cache"
    );
    // The canonical-form template must NOT mention shards — that line is
    // what the implementation hashes.
    let canonical = text
        .lines()
        .find(|l| l.starts_with("kernel=<kernel>"))
        .expect("spec must show the canonical-form template");
    assert!(!canonical.contains("shards"), "canonical form must exclude shards");
    // And the implementation agrees with the doc on both counts.
    let mut req = cohesion_service::request::RunRequest {
        kernel: "sobel".into(),
        scale: cohesion_kernels::Scale::Tiny,
        cores: 16,
        point: "swcc".into(),
        seed: 0,
        shards: 1,
    };
    let base = req.canonical();
    req.shards = 4;
    assert_eq!(req.canonical(), base);
}

/// The operating section (§2.4) documents the `stats` payload: every
/// client message type must appear as a per-type request counter, and
/// the payload's top-level keys must all be named.
#[test]
fn operating_guide_documents_the_stats_payload() {
    let text = spec_text();
    let section = text
        .split("### 2.4")
        .nth(1)
        .expect("spec must have the operating section (§2.4)");
    for m in MsgType::ALL {
        if m.client_to_server() {
            assert!(
                section.contains(&format!("`{}`", m.name())),
                "operating section must list the {} request counter",
                m.name()
            );
        }
    }
    for key in [
        "uptime_ms",
        "connections",
        "active_connections",
        "requests",
        "errors",
        "queue",
        "workers",
        "jobs_executed",
        "cache",
    ] {
        assert!(
            section.contains(&format!("`{key}`")),
            "operating section must document the stats payload key {key:?}"
        );
    }
    assert!(
        section.contains("cohesiond event="),
        "operating section must show the structured log prefix"
    );
}

/// Extracts every event name passed to `log::log("...", ...)` /
/// `crate::log::log("...", ...)` in a source file.
fn logged_events(source: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = source;
    while let Some(pos) = rest.find("log(") {
        rest = &rest[pos + 4..];
        let arg = rest.trim_start();
        if let Some(arg) = arg.strip_prefix('"') {
            if let Some(end) = arg.find('"') {
                out.push(arg[..end].to_string());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Every event the daemon actually logs is a row in the spec's event
/// table — adding a `log::log("new-event", ...)` call without
/// documenting it fails here.
#[test]
fn every_logged_event_is_documented() {
    let text = spec_text();
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/src");
    let mut events = Vec::new();
    for file in ["server.rs", "cache.rs", "bin/cohesiond.rs"] {
        let path = format!("{root}/{file}");
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        events.extend(logged_events(&src));
    }
    events.sort();
    events.dedup();
    assert!(
        events.len() >= 10,
        "expected the daemon to log at least 10 distinct events, found {events:?}"
    );
    for event in events {
        assert!(
            text.lines().any(|l| {
                let c = cells(l);
                c.len() == 3 && c[0].split(" / ").any(|e| strip_ticks(e.trim()) == event)
            }),
            "logged event {event:?} has no row in the spec's event table"
        );
    }
}

#[test]
fn spec_pins_the_frame_constants() {
    let text = spec_text();
    // The framing constants are normative; if the code changes them the
    // spec must follow.
    assert!(
        text.contains("67108864"),
        "spec must state the 64 MiB frame cap ({})",
        cohesion_service::wire::MAX_FRAME
    );
    assert_eq!(cohesion_service::wire::MAX_FRAME, 64 << 20);
    assert!(
        text.contains("cohesion-wire/v1"),
        "spec must name the protocol version"
    );
    assert_eq!(cohesion_service::wire::WIRE_VERSION, 1);
}
