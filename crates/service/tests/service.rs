//! End-to-end tests: a real `cohesiond` server on a loopback socket,
//! driven by the real client — handshake, submissions, cache-hit
//! byte-identity, malformed frames, version negotiation, drain.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use cohesion_service::client::{Client, ClientError, Event};
use cohesion_service::request::{RunRequest, SweepRequest};
use cohesion_service::server::{Server, ServerConfig, StopHandle};
use cohesion_service::wire::{read_frame, write_frame, ErrorCode, FrameError, MsgType};
use cohesion_kernels::Scale;

/// Starts a server on an ephemeral port; returns its address, stop
/// handle, and the thread running it.
fn start_server(mut cfg: ServerConfig) -> (String, StopHandle, std::thread::JoinHandle<()>) {
    cfg.addr = "127.0.0.1:0".into();
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let stop = server.stop_handle();
    let thread = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, stop, thread)
}

fn quick_cfg() -> ServerConfig {
    ServerConfig {
        workers: 2,
        drain_grace: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn connect(addr: &str) -> Client {
    let mut client = Client::connect(addr, Duration::from_secs(5)).expect("connect");
    client
        .set_reply_timeout(Duration::from_secs(120))
        .expect("reply timeout");
    client
}

fn tiny_run(seed: u64) -> RunRequest {
    RunRequest {
        kernel: "sobel".into(),
        scale: Scale::Tiny,
        cores: 16,
        point: "swcc".into(),
        seed,
        shards: 1,
    }
}

fn stop_and_join(stop: StopHandle, thread: std::thread::JoinHandle<()>) {
    stop.stop();
    thread.join().expect("server thread");
}

#[test]
fn handshake_submit_and_cache_hit_are_byte_identical() {
    let (addr, stop, thread) = start_server(quick_cfg());
    let mut client = connect(&addr);
    assert_eq!(client.server_info().version, 1);
    assert!(client.server_info().server.starts_with("cohesiond/"));

    let first = client
        .submit_run(&tiny_run(0), |_| {})
        .expect("first submission");
    assert_eq!(first.reports.len(), 1);
    assert_eq!(first.cached, 0);
    assert!(first.reports[0]
        .doc
        .contains("\"schema\": \"cohesion-metrics/v1\""));

    let mut saw_cached_progress = false;
    let second = client
        .submit_run(&tiny_run(0), |ev| {
            if let Event::Progress { cached: true, .. } = ev {
                saw_cached_progress = true;
            }
        })
        .expect("second submission");
    assert_eq!(second.cached, 1, "second identical request must hit");
    assert!(saw_cached_progress, "hit must be visible in progress");
    assert_eq!(
        first.reports[0].doc, second.reports[0].doc,
        "cache hits must be byte-identical"
    );
    assert_eq!(first.reports[0].key, second.reports[0].key);

    // fetch-report returns the same bytes again, by key alone.
    let fetched = client.fetch(&first.reports[0].key).expect("fetch");
    assert_eq!(fetched.doc, first.reports[0].doc);

    let pong = client.ping().expect("ping");
    assert_eq!(pong.jobs_executed, 1, "one simulation, two hits");
    assert!(pong.cache_hits >= 2);

    stop_and_join(stop, thread);
}

#[test]
fn sweep_streams_every_job_and_reassembles_in_order() {
    let (addr, stop, thread) = start_server(quick_cfg());
    let mut client = connect(&addr);
    let sweep = SweepRequest {
        kernels: vec!["sobel".into(), "heat".into()],
        points: vec!["swcc".into(), "cohesion".into()],
        scale: Scale::Tiny,
        cores: 16,
        seed: 0,
        shards: 1,
    };
    let mut accepted_jobs = 0;
    let outcome = client
        .submit_sweep(&sweep, |ev| {
            if let Event::Accepted { jobs, .. } = ev {
                accepted_jobs = *jobs;
            }
        })
        .expect("sweep");
    assert_eq!(accepted_jobs, 4);
    assert_eq!(outcome.reports.len(), 4);
    assert_eq!(outcome.failed, 0);
    let jobs: Vec<usize> = outcome.reports.iter().map(|r| r.job).collect();
    assert_eq!(jobs, vec![0, 1, 2, 3], "client reassembles submission order");
    // Kernels-major expansion: job 0/1 are sobel, 2/3 are heat.
    assert!(outcome.reports[0].label.starts_with("sobel"));
    assert!(outcome.reports[3].label.starts_with("heat"));
    stop_and_join(stop, thread);
}

#[test]
fn invalid_requests_get_structured_errors_and_connection_survives() {
    let (addr, stop, thread) = start_server(quick_cfg());
    let mut client = connect(&addr);

    let mut bad = tiny_run(0);
    bad.kernel = "fft".into();
    let err = client.submit_run(&bad, |_| {}).expect_err("unknown kernel");
    assert_eq!(err.code, Some(ErrorCode::UnknownKernel), "{err}");

    let mut bad = tiny_run(0);
    bad.point = "warp".into();
    let err = client.submit_run(&bad, |_| {}).expect_err("bad point");
    assert_eq!(err.code, Some(ErrorCode::BadRequest), "{err}");

    let err = client
        .fetch("0000000000000000000000000000dead")
        .expect_err("unknown key");
    assert_eq!(err.code, Some(ErrorCode::NotFound), "{err}");

    // After three request errors, the same connection still works.
    let outcome = client.submit_run(&tiny_run(0), |_| {}).expect("still usable");
    assert_eq!(outcome.reports.len(), 1);
    stop_and_join(stop, thread);
}

#[test]
fn version_negotiation_failure_is_reported_and_closes() {
    let (addr, stop, thread) = start_server(quick_cfg());
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write_frame(&mut stream, MsgType::Hello, "{\"versions\": [99]}").unwrap();
    let frame = read_frame(&mut stream).expect("error frame");
    assert_eq!(frame.msg, MsgType::Error);
    assert!(frame.payload.contains("\"unsupported-version\""));
    // Server closes after the error.
    assert!(matches!(read_frame(&mut stream), Err(FrameError::Closed)));
    stop_and_join(stop, thread);
}

#[test]
fn requests_before_hello_are_rejected() {
    let (addr, stop, thread) = start_server(quick_cfg());
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write_frame(&mut stream, MsgType::Ping, "{}").unwrap();
    let frame = read_frame(&mut stream).expect("error frame");
    assert_eq!(frame.msg, MsgType::Error);
    assert!(frame.payload.contains("\"bad-request\""));
    assert!(frame.payload.contains("first message must be hello"));
    stop_and_join(stop, thread);
}

#[test]
fn malformed_frames_get_bad_frame_errors() {
    let (addr, stop, thread) = start_server(quick_cfg());

    // Unknown tag.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(&1u32.to_be_bytes()).unwrap();
    stream.write_all(&[0x7e]).unwrap();
    let frame = read_frame(&mut stream).expect("error frame");
    assert_eq!(frame.msg, MsgType::Error);
    assert!(frame.payload.contains("\"bad-frame\""), "{}", frame.payload);

    // Hostile length prefix: rejected without the server allocating.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let frame = read_frame(&mut stream).expect("error frame");
    assert_eq!(frame.msg, MsgType::Error);
    assert!(frame.payload.contains("exceeds"), "{}", frame.payload);

    // Non-JSON payload after a valid hello.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write_frame(&mut stream, MsgType::Hello, "{\"versions\": [1]}").unwrap();
    let ack = read_frame(&mut stream).expect("hello-ack");
    assert_eq!(ack.msg, MsgType::HelloAck);
    write_frame(&mut stream, MsgType::Ping, "not json").unwrap();
    let frame = read_frame(&mut stream).expect("error frame");
    assert!(frame.payload.contains("\"bad-frame\""), "{}", frame.payload);

    // Server-to-client tag from a client.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write_frame(&mut stream, MsgType::Hello, "{\"versions\": [1]}").unwrap();
    read_frame(&mut stream).expect("hello-ack");
    write_frame(&mut stream, MsgType::Pong, "{}").unwrap();
    let frame = read_frame(&mut stream).expect("error frame");
    assert!(
        frame.payload.contains("server-to-client"),
        "{}",
        frame.payload
    );

    stop_and_join(stop, thread);
}

#[test]
fn shutdown_frame_drains_the_server() {
    let (addr, _stop, thread) = start_server(quick_cfg());
    let mut client = connect(&addr);
    // Warm one job in so the drain has something to have finished.
    client.submit_run(&tiny_run(3), |_| {}).expect("run");
    client.shutdown().expect("shutdown acknowledged");
    // The server thread exits on its own — no external stop needed.
    thread.join().expect("server drained");
    // New connections are refused once the listener is gone.
    assert!(
        TcpStream::connect(&addr).is_err(),
        "listener must be closed after drain"
    );
}

#[test]
fn draining_server_refuses_new_submissions() {
    let (addr, stop, thread) = start_server(ServerConfig {
        drain_grace: Duration::from_secs(5),
        ..quick_cfg()
    });
    let mut client = connect(&addr);
    client.submit_run(&tiny_run(0), |_| {}).expect("warm-up");
    stop.stop();
    // The connection is already open; a submission racing the drain gets
    // either a structured `draining` error or a closed connection,
    // never a hang or a panic.
    match client.submit_run(&tiny_run(4), |_| {}) {
        Err(ClientError { code, .. }) => {
            assert!(
                code.is_none() || code == Some(ErrorCode::Draining),
                "unexpected code {code:?}"
            );
        }
        Ok(_) => {
            // Submission slipped in before the connection noticed: fine,
            // drain still completes below.
        }
    }
    thread.join().expect("server drained");
}

#[test]
fn tiny_queue_returns_queue_full() {
    // One worker, queue capacity 1: a 4-job sweep cannot be admitted
    // atomically once anything is queued.
    let (addr, stop, thread) = start_server(ServerConfig {
        workers: 1,
        queue_cap: 1,
        ..quick_cfg()
    });
    let mut client = connect(&addr);
    let sweep = SweepRequest {
        kernels: vec!["sobel".into(), "heat".into(), "stencil".into(), "kmeans".into()],
        points: vec!["swcc".into()],
        scale: Scale::Tiny,
        cores: 16,
        seed: 0,
        shards: 1,
    };
    let err = client.submit_sweep(&sweep, |_| {}).expect_err("queue full");
    assert_eq!(err.code, Some(ErrorCode::QueueFull), "{err}");
    // A single run still fits.
    let outcome = client.submit_run(&tiny_run(0), |_| {}).expect("single run");
    assert_eq!(outcome.reports.len(), 1);
    stop_and_join(stop, thread);
}
