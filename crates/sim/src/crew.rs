//! A persistent phase-barrier worker crew for sharded execution.
//!
//! The sharded executor runs ~10⁵ short parallel windows per simulation,
//! so spawning threads per window is out of the question. A [`Crew`]
//! keeps `workers` threads parked on a condvar; [`Crew::run`] publishes
//! a batch of jobs, wakes everyone, has the *calling* thread claim jobs
//! alongside the workers, and returns only when every job has finished.
//! Between calls the workers cost nothing but their parked stacks.
//!
//! Jobs borrow caller state (per-lane machine slices, per-lane event
//! queues), so they cannot be `'static` — the crew erases their
//! lifetimes into raw pointers that are only ever dereferenced while
//! [`Crew::run`] is blocked, which is what makes the erasure sound. A
//! panicking job is caught, the rest of the batch completes, and the
//! panic is re-raised on the calling thread.
//!
//! Jobs in one batch run concurrently in an unspecified order, so they
//! must touch disjoint state; any cross-job ordering requirement
//! belongs in serial code between batches. Determinism therefore never
//! depends on the crew: with the work partitioned by lane, the same
//! batch produces the same per-lane results whether it runs here or
//! inline on one thread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::timeline::CrewSpanLog;

/// A lifetime-erased job pointer. Only dereferenced between the moment
/// `Crew::run` publishes a batch and the moment it observes the batch
/// complete, during which the caller's borrow is alive and blocked.
#[derive(Clone, Copy)]
struct RawJob(*mut (dyn FnMut() + Send));

// SAFETY: the pointee is `FnMut() + Send`, and the pointer is only
// dereferenced by exactly one thread at a time (each job index is
// claimed once under the mutex).
unsafe impl Send for RawJob {}

impl RawJob {
    /// Erases the borrow's lifetime. Sound only because `Crew::run`
    /// blocks until the batch drains and clears the job list before
    /// returning, so no pointer survives the borrow it came from.
    fn erase<'a>(j: &mut (dyn FnMut() + Send + 'a)) -> RawJob {
        let ptr = j as *mut (dyn FnMut() + Send + 'a);
        RawJob(unsafe {
            std::mem::transmute::<
                *mut (dyn FnMut() + Send + 'a),
                *mut (dyn FnMut() + Send + 'static),
            >(ptr)
        })
    }
}

struct State {
    /// Bumped once per batch; workers sleep until it changes.
    epoch: u64,
    jobs: Vec<RawJob>,
    /// Next unclaimed job index.
    next: usize,
    /// Jobs finished (completed or panicked).
    done: usize,
    /// At least one job in the current batch panicked.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new epoch (or shutdown).
    work: Condvar,
    /// The batch caller waits here for `done == jobs.len()`.
    idle: Condvar,
}

impl Shared {
    /// Claims and runs jobs from the current batch until none are left.
    /// Returns with the lock released.
    fn drain_batch(&self) {
        loop {
            let job = {
                let mut st = self.state.lock().unwrap();
                if st.next >= st.jobs.len() {
                    return;
                }
                let job = st.jobs[st.next];
                st.next += 1;
                job
            };
            // SAFETY: see `RawJob` — unique claim, caller borrow alive.
            let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)() }));
            let mut st = self.state.lock().unwrap();
            if outcome.is_err() {
                st.panicked = true;
            }
            st.done += 1;
            if st.done == st.jobs.len() {
                self.idle.notify_all();
            }
        }
    }
}

/// A fixed-size pool of parked worker threads executing batches of
/// lifetime-erased jobs with a barrier per batch. See the module docs.
pub struct Crew {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Crew {
    /// Spawns `workers` parked threads. The thread calling [`Crew::run`]
    /// also executes jobs, so a crew sized `n - 1` saturates `n` cores.
    /// `workers == 0` is valid: every batch then runs inline on the
    /// caller.
    pub fn new(workers: usize) -> Self {
        Self::build(workers, None)
    }

    /// Like [`Crew::new`], but every worker records a park span (time
    /// waiting for a batch) and a run span (time draining it) into
    /// `trace` — the timeline flight recorder's crew section. Tracing
    /// costs two clock reads per worker per batch and nothing else; it
    /// never affects job scheduling, so determinism is untouched.
    pub fn traced(workers: usize, trace: Arc<CrewSpanLog>) -> Self {
        Self::build(workers, Some(trace))
    }

    fn build(workers: usize, trace: Option<Arc<CrewSpanLog>>) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                jobs: Vec::new(),
                next: 0,
                done: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let trace = trace.clone();
                std::thread::Builder::new()
                    .name(format!("cohesion-crew-{i}"))
                    .spawn(move || {
                        let mut seen = 0u64;
                        loop {
                            let park_t0 = trace.as_ref().map(|tr| tr.now_us());
                            {
                                let mut st = shared.state.lock().unwrap();
                                while st.epoch == seen && !st.shutdown {
                                    st = shared.work.wait(st).unwrap();
                                }
                                if st.shutdown {
                                    return;
                                }
                                seen = st.epoch;
                            }
                            if let (Some(tr), Some(t0)) = (&trace, park_t0) {
                                tr.record(i, "crew_park", t0, tr.now_us().saturating_sub(t0));
                            }
                            let run_t0 = trace.as_ref().map(|tr| tr.now_us());
                            shared.drain_batch();
                            if let (Some(tr), Some(t0)) = (&trace, run_t0) {
                                tr.record(i, "crew_run", t0, tr.now_us().saturating_sub(t0));
                            }
                        }
                    })
                    .expect("spawn crew worker")
            })
            .collect();
        Crew { shared, workers }
    }

    /// Number of worker threads (not counting the caller).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs every job in `jobs` to completion, the caller participating
    /// alongside the workers, and returns when all have finished.
    ///
    /// # Panics
    ///
    /// Re-raises on this thread if any job panicked (after the whole
    /// batch has drained, so no job pointer outlives its borrow).
    pub fn run(&self, jobs: &mut [&mut (dyn FnMut() + Send)]) {
        if jobs.is_empty() {
            return;
        }
        let total = jobs.len();
        {
            let mut st = self.shared.state.lock().unwrap();
            st.jobs = jobs.iter_mut().map(|j| RawJob::erase(*j)).collect();
            st.next = 0;
            st.done = 0;
            st.panicked = false;
            st.epoch += 1;
            self.shared.work.notify_all();
        }
        self.shared.drain_batch();
        let panicked = {
            let mut st = self.shared.state.lock().unwrap();
            while st.done < total {
                st = self.shared.idle.wait(st).unwrap();
            }
            st.jobs.clear();
            st.panicked
        };
        if panicked {
            panic!("a crew job panicked (rethrown on the batch caller)");
        }
    }
}

impl Drop for Crew {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            // A worker that panicked outside a job (impossible today) is
            // already accounted for; don't double-panic in drop.
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_exactly_once() {
        let crew = Crew::new(3);
        for batch in 0..50 {
            let hits = AtomicUsize::new(0);
            let mut sum = vec![0u64; 8];
            {
                let mut jobs: Vec<Box<dyn FnMut() + Send>> = sum
                    .iter_mut()
                    .map(|slot| {
                        let hits = &hits;
                        Box::new(move || {
                            *slot += batch + 1;
                            hits.fetch_add(1, Ordering::SeqCst);
                        }) as Box<dyn FnMut() + Send>
                    })
                    .collect();
                let mut refs: Vec<&mut (dyn FnMut() + Send)> =
                    jobs.iter_mut().map(|b| b.as_mut() as _).collect();
                crew.run(&mut refs);
            }
            assert_eq!(hits.load(Ordering::SeqCst), 8);
            assert!(sum.iter().all(|&s| s == batch + 1));
        }
    }

    #[test]
    fn zero_worker_crew_runs_inline() {
        let crew = Crew::new(0);
        let mut x = 0;
        let mut job = |/* inline on caller */| x += 1;
        let mut jobs: [&mut (dyn FnMut() + Send); 1] = [&mut job];
        crew.run(&mut jobs);
        assert_eq!(x, 1);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let crew = Crew::new(2);
        crew.run(&mut []);
    }

    #[test]
    fn traced_crew_records_park_and_run_spans() {
        use crate::timeline::CrewSpanLog;
        use std::time::{Duration, Instant};
        let log = Arc::new(CrewSpanLog::new(2, Instant::now(), 1024));
        let crew = Crew::traced(2, Arc::clone(&log));
        let mut seen_park = false;
        let mut seen_run = false;
        // Workers record spans when they wake for a batch; a fast caller
        // can drain a batch alone, so pump batches (with jobs slow enough
        // for workers to claim some) until both span kinds show up.
        for _ in 0..200 {
            let mut jobs: Vec<Box<dyn FnMut() + Send>> = (0..4)
                .map(|_| {
                    Box::new(move || std::thread::sleep(Duration::from_millis(1)))
                        as Box<dyn FnMut() + Send>
                })
                .collect();
            let mut refs: Vec<&mut (dyn FnMut() + Send)> =
                jobs.iter_mut().map(|b| b.as_mut() as _).collect();
            crew.run(&mut refs);
            let (spans, _) = log.drain();
            seen_park |= spans.iter().any(|s| s.name == "crew_park");
            seen_run |= spans.iter().any(|s| s.name == "crew_run");
            if seen_park && seen_run {
                break;
            }
        }
        assert!(seen_park, "workers record park intervals");
        assert!(seen_run, "workers record run intervals");
    }

    #[test]
    fn job_panic_is_rethrown_after_the_batch_drains() {
        let crew = Crew::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut a = || panic!("boom");
            let b_fin = &finished;
            let mut b = || {
                b_fin.fetch_add(1, Ordering::SeqCst);
            };
            let mut jobs: [&mut (dyn FnMut() + Send); 2] = [&mut a, &mut b];
            crew.run(&mut jobs);
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::SeqCst), 1, "other jobs still ran");
        // The crew survives a panicked batch.
        let mut ok = || {
            finished.fetch_add(1, Ordering::SeqCst);
        };
        let mut jobs: [&mut (dyn FnMut() + Send); 1] = [&mut ok];
        crew.run(&mut jobs);
        assert_eq!(finished.load(Ordering::SeqCst), 2);
    }
}
