//! Deterministic event wheel.
//!
//! The simulator advances by popping the earliest pending event rather than
//! ticking every component every cycle: a blocked core costs nothing until
//! its memory reply arrives. Events scheduled for the same cycle are
//! delivered in insertion order, which keeps the whole simulation
//! deterministic without any per-component tie-break logic.
//!
//! # Implementation: hierarchical bucketed timing wheel
//!
//! Almost every event a cycle-level machine schedules lands within a few
//! hundred cycles of the present (cache hits, link hops, DRAM round trips,
//! scheduling quanta), so the queue is a classic two-level timing wheel
//! rather than a binary heap:
//!
//! * **Wheel** — 256 (`WHEEL_SLOTS`) buckets cover the cycles in
//!   `[base, base + WHEEL_SLOTS)`. An event due at cycle `at` in that window
//!   lives in bucket `at % WHEEL_SLOTS`; because the window is exactly one
//!   lap wide, every bucket holds events of a *single* cycle. A per-word
//!   occupancy bitmap makes "find the next non-empty bucket" a handful of
//!   `trailing_zeros` scans, so schedule and pop are O(1) instead of the
//!   heap's O(log n) sift.
//! * **Overflow heap** — events due at or beyond `base + WHEEL_SLOTS` wait in
//!   a `BinaryHeap` ordered by `(cycle, seq)`. They are *promoted* into the
//!   wheel when the window reaches them: whenever the wheel drains empty, the
//!   window re-bases onto the overflow's earliest cycle and every overflow
//!   event inside the new window moves to its bucket.
//!
//! # Determinism contract
//!
//! Pop order is exactly ascending `(cycle, seq)`, where `seq` is the global
//! schedule counter — identical to the binary-heap implementation this
//! replaced, so simulator output is byte-for-byte unchanged. Buckets keep
//! their events sorted by `seq`: direct schedules always append in
//! increasing `seq`, and a promotion that lands in a bucket already holding
//! later-scheduled events for the same cycle is spliced in by binary search.
//! The clock never moves backwards: scheduling before `now()` panics, and
//! all pending events are always at or after `now()`.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::Cycle;

/// Number of buckets in the near-future wheel (one simulated cycle per
/// bucket; must be a power of two). 256 cycles comfortably covers the
/// longest single-hop latency in the machine model, so overflow promotion
/// is rare.
const WHEEL_SLOTS: usize = 256;
const WHEEL_MASK: Cycle = WHEEL_SLOTS as Cycle - 1;
const OCC_WORDS: usize = WHEEL_SLOTS / 64;

/// A pending event: delivery cycle, FIFO sequence number, payload.
#[derive(Debug, Clone)]
struct Pending<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

impl<E> Pending<E> {
    fn ord_key(&self) -> (Cycle, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.ord_key() == other.ord_key()
    }
}
impl<E> Eq for Pending<E> {}

impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// `BinaryHeap` is a max-heap; invert the ordering so the earliest event wins.
impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.ord_key().cmp(&self.ord_key())
    }
}

/// A deterministic priority queue of simulation events.
///
/// Events pop in `(cycle, insertion order)` order. See the crate-level
/// example for typical use, and the module docs for the timing-wheel
/// design and determinism contract.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Near-future buckets; bucket `s` holds events for the single cycle
    /// in `[base, base + WHEEL_SLOTS)` congruent to `s` mod `WHEEL_SLOTS`,
    /// kept sorted by `seq`.
    slots: Vec<VecDeque<Pending<E>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupancy: [u64; OCC_WORDS],
    /// Total events currently in the wheel (not counting the overflow).
    wheel_len: usize,
    /// Start of the wheel's cycle window. Only moves forward, and only
    /// re-bases while the wheel is empty.
    base: Cycle,
    /// Far-future events (`at >= base + WHEEL_SLOTS`), ordered `(at, seq)`.
    overflow: BinaryHeap<Pending<E>>,
    next_seq: u64,
    now: Cycle,
    max_pending: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at cycle 0.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupancy: [0; OCC_WORDS],
            wheel_len: 0,
            base: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
            max_pending: 0,
        }
    }

    /// Schedules `payload` for delivery at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the last popped event); the
    /// simulator never time-travels.
    pub fn schedule(&mut self, at: Cycle, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled at cycle {at} but the clock already reads {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let p = Pending { at, seq, payload };
        if at - self.base < WHEEL_SLOTS as Cycle {
            self.push_wheel(p);
        } else {
            self.overflow.push(p);
        }
        let pending = self.wheel_len + self.overflow.len();
        self.max_pending = self.max_pending.max(pending);
    }

    /// Pops the earliest pending event, advancing the clock to its cycle.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.wheel_len == 0 {
            // The wheel drained; re-base its window onto the overflow's
            // earliest cycle (if any) and promote what now fits.
            let at = self.overflow.peek()?.at;
            self.base = at;
            self.promote();
        }
        let s = self.next_occupied_slot();
        let bucket = &mut self.slots[s];
        let p = bucket.pop_front().expect("occupancy bit set on empty bucket");
        if bucket.is_empty() {
            self.occupancy[s >> 6] &= !(1u64 << (s & 63));
        }
        self.wheel_len -= 1;
        debug_assert!(p.at >= self.now);
        self.now = p.at;
        Some((p.at, p.payload))
    }

    /// The cycle of the most recently popped event (0 before any pop).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The delivery cycle of the next pending event, if any.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        // Wheel events always precede overflow events: the overflow holds
        // only cycles at or beyond the wheel's window.
        if self.wheel_len > 0 {
            let s = self.next_occupied_slot();
            return self.slots[s].front().map(|p| p.at);
        }
        self.overflow.peek().map(|p| p.at)
    }

    /// Total events ever scheduled on this queue (the sequence counter —
    /// also the FIFO tie-break watermark).
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }

    /// High-water mark of simultaneously pending events — how full the
    /// event wheel ever got.
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// Inserts an event whose cycle fits the wheel window, keeping its
    /// bucket sorted by `seq`.
    fn push_wheel(&mut self, p: Pending<E>) {
        debug_assert!(p.at >= self.base && p.at - self.base < WHEEL_SLOTS as Cycle);
        let s = (p.at & WHEEL_MASK) as usize;
        let bucket = &mut self.slots[s];
        debug_assert!(bucket.front().is_none_or(|q| q.at == p.at));
        match bucket.back() {
            // Promotion of an overflow event into a bucket that already
            // holds later-scheduled events for the same cycle: splice it
            // into `seq` position.
            Some(last) if last.seq > p.seq => {
                let pos = bucket
                    .binary_search_by(|q| q.seq.cmp(&p.seq))
                    .unwrap_err();
                bucket.insert(pos, p);
            }
            _ => bucket.push_back(p),
        }
        self.occupancy[s >> 6] |= 1u64 << (s & 63);
        self.wheel_len += 1;
    }

    /// Moves every overflow event inside the current window into the wheel.
    fn promote(&mut self) {
        let horizon = self.base + WHEEL_SLOTS as Cycle;
        while let Some(p) = self.overflow.peek() {
            if p.at >= horizon {
                break;
            }
            let p = self.overflow.pop().expect("peeked event vanished");
            self.push_wheel(p);
        }
    }

    /// Index of the first non-empty bucket at or after `base`, scanning the
    /// occupancy bitmap cyclically. Callers guarantee `wheel_len > 0`.
    fn next_occupied_slot(&self) -> usize {
        debug_assert!(self.wheel_len > 0);
        let start = (self.base & WHEEL_MASK) as usize;
        let w0 = start >> 6;
        let high = self.occupancy[w0] & (!0u64 << (start & 63));
        if high != 0 {
            return (w0 << 6) + high.trailing_zeros() as usize;
        }
        for i in 1..OCC_WORDS {
            let w = (w0 + i) % OCC_WORDS;
            let bits = self.occupancy[w];
            if bits != 0 {
                return (w << 6) + bits.trailing_zeros() as usize;
            }
        }
        let low = self.occupancy[w0] & !(!0u64 << (start & 63));
        debug_assert!(low != 0, "wheel_len > 0 but no occupancy bit set");
        (w0 << 6) + low.trailing_zeros() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(7, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_tracks_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(5, ());
        q.schedule(9, ());
        q.pop();
        assert_eq!(q.now(), 5);
        q.schedule(5, ()); // same cycle as `now` is allowed
        q.pop();
        q.pop();
        assert_eq!(q.now(), 9);
    }

    #[test]
    #[should_panic(expected = "already reads")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(3, ());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_cycle(), None);
        q.schedule(4, 1);
        q.schedule(2, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_cycle(), Some(2));
    }

    #[test]
    fn far_future_events_overflow_and_promote() {
        let mut q = EventQueue::new();
        // Far beyond the wheel window: lands in the overflow heap.
        q.schedule(10_000, 'z');
        q.schedule(5, 'a');
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_cycle(), Some(5));
        assert_eq!(q.pop(), Some((5, 'a')));
        // Wheel empty → window jumps straight to the overflow's cycle.
        assert_eq!(q.peek_cycle(), Some(10_000));
        assert_eq!(q.pop(), Some((10_000, 'z')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn promoted_events_keep_seq_order_within_a_cycle() {
        let mut q = EventQueue::new();
        // seq 0 goes to the overflow (cycle 300 is outside [0, 256)).
        q.schedule(300, 0u32);
        q.schedule(10, 1u32);
        assert_eq!(q.pop(), Some((10, 1)));
        // After advancing, cycle 300 enters the (re-based) window; this
        // direct schedule shares the bucket with the promoted seq-0 event
        // only after promotion — FIFO by seq must still hold.
        q.schedule(300, 2u32);
        assert_eq!(q.pop(), Some((300, 0)));
        assert_eq!(q.pop(), Some((300, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn window_boundary_cycles_route_correctly() {
        let mut q = EventQueue::new();
        q.schedule(WHEEL_SLOTS as Cycle - 1, 'w'); // last wheel bucket
        q.schedule(WHEEL_SLOTS as Cycle, 'o'); // first overflow cycle
        q.schedule(0, 'n'); // shares bucket index with 'o' mod WHEEL_SLOTS
        assert_eq!(q.pop(), Some((0, 'n')));
        assert_eq!(q.pop(), Some((WHEEL_SLOTS as Cycle - 1, 'w')));
        assert_eq!(q.pop(), Some((WHEEL_SLOTS as Cycle, 'o')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_across_many_laps() {
        // Drive the window through several laps with a mix of near and far
        // events and verify global (cycle, seq) order.
        let mut q = EventQueue::new();
        let mut expect: Vec<(Cycle, u32)> = Vec::new();
        let mut id = 0u32;
        for lap in 0..10u64 {
            for d in [0u64, 1, 63, 64, 255, 256, 257, 1000] {
                let at = lap * 200 + d;
                if at >= q.now() {
                    q.schedule(at, id);
                    expect.push((at, id));
                    id += 1;
                }
            }
            // Pop a couple between bursts to advance the clock.
            for _ in 0..3 {
                if let Some((t, v)) = q.pop() {
                    let min = expect
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(at, seq))| (at, seq))
                        .map(|(i, _)| i)
                        .unwrap();
                    assert_eq!((t, v), expect.remove(min));
                }
            }
        }
        while let Some((t, v)) = q.pop() {
            let min = expect
                .iter()
                .enumerate()
                .min_by_key(|(_, &(at, seq))| (at, seq))
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!((t, v), expect.remove(min));
        }
        assert!(expect.is_empty());
    }
}
