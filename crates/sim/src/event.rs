//! Deterministic event wheel.
//!
//! The simulator advances by popping the earliest pending event rather than
//! ticking every component every cycle: a blocked core costs nothing until
//! its memory reply arrives. Events scheduled for the same cycle are
//! delivered in insertion order, which keeps the whole simulation
//! deterministic without any per-component tie-break logic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A pending event: delivery cycle, FIFO sequence number, payload.
#[derive(Debug, Clone)]
struct Pending<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

impl<E> Pending<E> {
    fn ord_key(&self) -> (Cycle, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.ord_key() == other.ord_key()
    }
}
impl<E> Eq for Pending<E> {}

impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// `BinaryHeap` is a max-heap; invert the ordering so the earliest event wins.
impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.ord_key().cmp(&self.ord_key())
    }
}

/// A deterministic priority queue of simulation events.
///
/// Events pop in `(cycle, insertion order)` order. See the crate-level
/// example for typical use.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Pending<E>>,
    next_seq: u64,
    now: Cycle,
    max_pending: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at cycle 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
            max_pending: 0,
        }
    }

    /// Schedules `payload` for delivery at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the last popped event); the
    /// simulator never time-travels.
    pub fn schedule(&mut self, at: Cycle, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled at cycle {at} but the clock already reads {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Pending { at, seq, payload });
        self.max_pending = self.max_pending.max(self.heap.len());
    }

    /// Pops the earliest pending event, advancing the clock to its cycle.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let p = self.heap.pop()?;
        debug_assert!(p.at >= self.now);
        self.now = p.at;
        Some((p.at, p.payload))
    }

    /// The cycle of the most recently popped event (0 before any pop).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The delivery cycle of the next pending event, if any.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|p| p.at)
    }

    /// Total events ever scheduled on this queue (the sequence counter —
    /// also the FIFO tie-break watermark).
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }

    /// High-water mark of simultaneously pending events — how full the
    /// event wheel ever got.
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(7, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn clock_tracks_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(5, ());
        q.schedule(9, ());
        q.pop();
        assert_eq!(q.now(), 5);
        q.schedule(5, ()); // same cycle as `now` is allowed
        q.pop();
        q.pop();
        assert_eq!(q.now(), 9);
    }

    #[test]
    #[should_panic(expected = "already reads")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(3, ());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_cycle(), None);
        q.schedule(4, 1);
        q.schedule(2, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_cycle(), Some(2));
    }
}
