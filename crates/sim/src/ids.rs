//! Newtype identifiers for the hardware components of the baseline machine.
//!
//! The baseline (Figure 4) is hierarchical: 8 cores form a *cluster* sharing
//! an L2; clusters talk through a tree + crossbar interconnect to multi-banked
//! L3 slices, each with a collocated directory bank. These newtypes keep the
//! three id spaces (core, cluster, L3 bank) from being confused.

use std::fmt;

/// Identifies one in-order core (0-based, machine-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u32);

/// Identifies one 8-core cluster and its shared L2 cache.
///
/// Clusters are the participants in the coherence protocol: directory sharer
/// sets are sets of `ClusterId`s, matching the paper's 128-bit full-map
/// sharer vectors for 128 clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClusterId(pub u32);

/// Identifies one L3 cache bank (and its collocated directory slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(pub u32);

impl CoreId {
    /// The cluster this core belongs to, given `cores_per_cluster`.
    pub fn cluster(self, cores_per_cluster: u32) -> ClusterId {
        ClusterId(self.0 / cores_per_cluster)
    }

    /// Index of this core within its cluster.
    pub fn lane(self, cores_per_cluster: u32) -> u32 {
        self.0 % cores_per_cluster
    }
}

impl ClusterId {
    /// Iterator over the cores of this cluster.
    pub fn cores(self, cores_per_cluster: u32) -> impl Iterator<Item = CoreId> {
        let base = self.0 * cores_per_cluster;
        (base..base + cores_per_cluster).map(CoreId)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l3bank{}", self.0)
    }
}

impl From<u32> for CoreId {
    fn from(v: u32) -> Self {
        CoreId(v)
    }
}

impl From<u32> for ClusterId {
    fn from(v: u32) -> Self {
        ClusterId(v)
    }
}

impl From<u32> for BankId {
    fn from(v: u32) -> Self {
        BankId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_to_cluster_mapping() {
        assert_eq!(CoreId(0).cluster(8), ClusterId(0));
        assert_eq!(CoreId(7).cluster(8), ClusterId(0));
        assert_eq!(CoreId(8).cluster(8), ClusterId(1));
        assert_eq!(CoreId(1023).cluster(8), ClusterId(127));
        assert_eq!(CoreId(13).lane(8), 5);
    }

    #[test]
    fn cluster_core_roundtrip() {
        let cluster = ClusterId(3);
        let cores: Vec<_> = cluster.cores(8).collect();
        assert_eq!(cores.len(), 8);
        for c in cores {
            assert_eq!(c.cluster(8), cluster);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(CoreId(4).to_string(), "core4");
        assert_eq!(ClusterId(2).to_string(), "cluster2");
        assert_eq!(BankId(31).to_string(), "l3bank31");
    }
}
