#![deny(missing_docs)]

//! Event-driven simulation engine for the Cohesion reproduction.
//!
//! This crate provides the timing substrate every other crate builds on:
//!
//! * [`event::EventQueue`] — a deterministic event wheel (bucketed timing
//!   wheel keyed by cycle with a far-future overflow heap, FIFO-tiebroken
//!   by insertion sequence).
//! * [`link::Link`] and [`link::Throttle`] — bandwidth/latency models for
//!   interconnect links and cache/directory ports.
//! * [`msg::MessageClass`] — the eight-way message taxonomy plotted in
//!   Figures 2 and 8 of the paper.
//! * [`stats`] — counters, time-weighted occupancy integrators, and the
//!   per-class message matrices the benchmark harness consumes.
//! * [`metrics`] — the opt-in machine-wide telemetry registry: named
//!   counters, gauges, log2-bucketed latency histograms, and a
//!   cycle-windowed time-series sampler, snapshotted into deterministic
//!   JSON run reports.
//! * [`timeline`] — the opt-in shard-epoch flight recorder: a bounded
//!   ring of typed wall-clock spans (phase A/B, cache/DRAM service,
//!   crew park/run) with deterministic escalation-cause attribution,
//!   exported as Chrome trace-event JSON plus a deterministic summary.
//!
//! The engine is fully deterministic: two runs with the same
//! configuration produce bit-identical statistics, which is what makes
//! the paper's figures reproducible artifacts rather than noisy
//! measurements. Parallel execution of one run is layered on top without
//! weakening that: [`shard::LaneQueues`] partitions events into per-lane
//! wheels drained in deterministically-merged windows, and [`crew::Crew`]
//! supplies the worker threads — host parallelism is never observable in
//! simulated results.
//!
//! # Example
//!
//! ```
//! use cohesion_sim::event::EventQueue;
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(10, "fill");
//! q.schedule(5, "probe");
//! q.schedule(5, "probe-ack"); // same cycle: FIFO order preserved
//! assert_eq!(q.pop(), Some((5, "probe")));
//! assert_eq!(q.pop(), Some((5, "probe-ack")));
//! assert_eq!(q.pop(), Some((10, "fill")));
//! ```

pub mod crew;
pub mod event;
pub mod ids;
pub mod link;
pub mod metrics;
pub mod msg;
pub mod shard;
pub mod slots;
pub mod stats;
pub mod timeline;
pub mod tracelog;

/// A point in simulated time, measured in core clock cycles.
///
/// The baseline machine runs cores, caches, and interconnect on a single
/// 1.5 GHz clock domain (Table 3), so one cycle type suffices.
pub type Cycle = u64;
