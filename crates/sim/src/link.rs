//! Bandwidth/latency models for interconnect links and structure ports.
//!
//! Both models book capacity through [`crate::slots::SlotReserver`], so
//! requests computed out of time order (the transaction-oriented simulator
//! resolves some work ahead of the event clock) contend only with requests
//! in their own cycle window — no phantom head-of-line blocking. This
//! captures queueing delay under contention — the effect the paper leans on
//! when it observes SWcc's uncached-atomic bursts suffering "queuing effects
//! in the network" (§4.5) — at a tiny fraction of the cost of flit-level
//! simulation.

use crate::slots::SlotReserver;
use crate::Cycle;

/// A point-to-point link with fixed latency and finite message bandwidth.
///
/// `interval` is the number of cycles between message acceptances (an
/// interval of 1 means one message per cycle). The tree stage of the
/// baseline interconnect concentrates sixteen clusters onto one root port,
/// so its links are the natural contention points.
#[derive(Debug, Clone)]
pub struct Link {
    latency: Cycle,
    slots: SlotReserver,
}

impl Link {
    /// Creates a link with the given one-way `latency` and acceptance
    /// `interval` (cycles between messages; must be a power of two ≤ 8).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero, not a power of two, or above 8.
    pub fn new(latency: Cycle, interval: Cycle) -> Self {
        assert!(
            (1..=8).contains(&interval) && interval.is_power_of_two(),
            "link interval must be a power of two between 1 and 8"
        );
        Link {
            latency,
            slots: SlotReserver::new(interval.trailing_zeros(), 1),
        }
    }

    /// Sends one message at cycle `now`; returns its arrival cycle.
    pub fn send(&mut self, now: Cycle) -> Cycle {
        self.slots.reserve(now) + self.latency
    }

    /// One-way latency of the link.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Total messages sent over this link so far.
    pub fn sent(&self) -> u64 {
        self.slots.reservations()
    }
}

/// A multi-ported structure (cache, directory) granting `width` accesses
/// per cycle.
///
/// The L2 has two read/write ports and the L3 banks one (Table 3); a grant
/// in a busy cycle slides to the next cycle with spare capacity.
#[derive(Debug, Clone)]
pub struct Throttle {
    slots: SlotReserver,
}

impl Throttle {
    /// Creates a throttle granting `width` accesses per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u32) -> Self {
        assert!(width >= 1, "a port throttle needs at least one port");
        Throttle {
            slots: SlotReserver::new(0, width),
        }
    }

    /// Requests an access at cycle `now`; returns the cycle at which the
    /// access is actually granted (≥ `now`).
    pub fn grant(&mut self, now: Cycle) -> Cycle {
        self.slots.reserve(now)
    }

    /// Total grants issued.
    pub fn grants(&self) -> u64 {
        self.slots.reservations()
    }

    /// Ports per cycle.
    pub fn width(&self) -> u32 {
        self.slots.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_link_adds_latency() {
        let mut l = Link::new(8, 1);
        assert_eq!(l.send(100), 108);
        assert_eq!(l.send(200), 208);
        assert_eq!(l.sent(), 2);
    }

    #[test]
    fn contended_link_serializes() {
        let mut l = Link::new(4, 2);
        // Three messages at the same cycle: departures at 10, 12, 14.
        assert_eq!(l.send(10), 14);
        assert_eq!(l.send(10), 16);
        assert_eq!(l.send(10), 18);
    }

    #[test]
    fn link_bandwidth_recovers_when_idle() {
        let mut l = Link::new(0, 4);
        assert_eq!(l.send(0), 0);
        assert_eq!(l.send(0), 4);
        // A long-idle link accepts immediately again.
        assert_eq!(l.send(100), 100);
    }

    #[test]
    fn future_sends_do_not_block_earlier_ones() {
        let mut l = Link::new(0, 1);
        assert_eq!(l.send(5000), 5000);
        assert_eq!(l.send(7), 7, "no phantom head-of-line blocking");
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_rejected() {
        let _ = Link::new(1, 0);
    }

    #[test]
    fn throttle_grants_width_per_cycle() {
        let mut t = Throttle::new(2);
        assert_eq!(t.grant(5), 5);
        assert_eq!(t.grant(5), 5);
        assert_eq!(t.grant(5), 6); // third access in cycle 5 slips
        assert_eq!(t.grant(5), 6);
        assert_eq!(t.grant(5), 7);
        assert_eq!(t.grants(), 5);
    }

    #[test]
    fn throttle_resets_on_advance() {
        let mut t = Throttle::new(1);
        assert_eq!(t.grant(0), 0);
        assert_eq!(t.grant(0), 1);
        assert_eq!(t.grant(10), 10);
    }

    #[test]
    fn throttle_out_of_order_grants() {
        let mut t = Throttle::new(1);
        assert_eq!(t.grant(100), 100);
        assert_eq!(t.grant(3), 3, "an earlier grant is not queued behind a future one");
        assert_eq!(t.grant(100), 101);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_width_rejected() {
        let _ = Throttle::new(0);
    }
}
