//! First-party telemetry: named counters, gauges, log2-bucketed latency
//! histograms, and a cycle-windowed time-series sampler.
//!
//! The paper's evaluation is aggregate (end-of-run message totals,
//! Figs. 2/8), but the interesting behavior in Cohesion is
//! *phase-resolved*: transitions cluster at barriers and the directory
//! fills in bursts. This module is the machine-wide substrate for seeing
//! that — every layer records into one [`Registry`] owned by the machine,
//! and a [`Snapshot`] of the registry rides home on the run report as
//! deterministic, dependency-free JSON (the same hand-rolled emission
//! style as `cohesion_testkit::bench`).
//!
//! Telemetry is strictly opt-in: a [`Registry::disarmed`] registry turns
//! every record call into a single branch on a `bool`, allocates nothing,
//! and snapshots to `None`, so default runs are byte-identical to a build
//! without this module.
//!
//! # Example
//!
//! ```
//! use cohesion_sim::metrics::Registry;
//!
//! let mut m = Registry::armed(1_000);
//! m.inc("transition/case_2a");
//! m.record_latency("latency/load", 17);
//! m.sample_add("messages", 2_500, 1); // lands in window [2000, 3000)
//! let snap = m.snapshot();
//! assert_eq!(snap.counters, vec![("transition/case_2a".to_string(), 1)]);
//! ```

use std::collections::BTreeMap;

use crate::Cycle;

/// Number of histogram buckets: one for the value `0`, plus one per
/// power-of-two magnitude of a `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (latencies, sizes, …).
///
/// Bucket `0` holds the value `0`; bucket `i` (for `i ≥ 1`) holds values
/// in `[2^(i-1), 2^i - 1]`. Alongside the buckets the histogram tracks
/// exact `count`, `sum`, `min`, and `max`, so means and extrema are exact
/// while percentiles are estimates interpolated within a bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for `v`: `0` for the value zero, else the bit
    /// width of `v` (so `1 → 1`, `2..=3 → 2`, `4..=7 → 3`, …).
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive value range `[lo, hi]` covered by bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS);
        if i == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (i - 1);
            let hi = lo.wrapping_shl(1).wrapping_sub(1); // i == 64 saturates to u64::MAX
            (lo, if hi < lo { u64::MAX } else { hi })
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `0` if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or `0` if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (index by [`Histogram::bucket_of`]).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Estimated `p`-quantile (`p` in `[0, 1]`), linearly interpolated
    /// inside the containing bucket and clamped to the exact recorded
    /// `[min, max]` range — so `percentile(1.0) == max()` exactly, and the
    /// estimate is monotone in `p`. Returns `0.0` if empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        // 1-indexed continuous rank in [1, count].
        let target = p * (self.count as f64 - 1.0) + 1.0;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            if (cum as f64) >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                let into = target - (cum - n) as f64; // position within bucket, (0, n]
                let frac = into / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64 // unreachable when count > 0, but keep total
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The fixed percentile summary serialized into run reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }
}

/// The serialized shape of one histogram in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Exact minimum (0 if empty).
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Exact mean.
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// A cycle-windowed time-series sampler.
///
/// Each named series is a dense vector of windows of `window` cycles:
/// index `w` aggregates everything observed at cycles
/// `[w·window, (w+1)·window)`. Two aggregations are offered: additive
/// ([`Sampler::add`], e.g. messages per window) and running-max
/// ([`Sampler::observe_max`], e.g. peak directory occupancy per window).
#[derive(Debug, Clone)]
pub struct Sampler {
    window: Cycle,
    series: BTreeMap<&'static str, Vec<u64>>,
}

impl Sampler {
    /// A sampler with the given window size in cycles (clamped to ≥ 1).
    pub fn new(window: Cycle) -> Self {
        Sampler {
            window: window.max(1),
            series: BTreeMap::new(),
        }
    }

    /// The window size in cycles.
    pub fn window(&self) -> Cycle {
        self.window
    }

    fn slot(&mut self, name: &'static str, now: Cycle) -> &mut u64 {
        let idx = (now / self.window) as usize;
        let v = self.series.entry(name).or_default();
        if v.len() <= idx {
            v.resize(idx + 1, 0);
        }
        &mut v[idx]
    }

    /// Adds `delta` into the window containing cycle `now`.
    pub fn add(&mut self, name: &'static str, now: Cycle, delta: u64) {
        *self.slot(name, now) += delta;
    }

    /// Raises the window containing cycle `now` to at least `value`.
    pub fn observe_max(&mut self, name: &'static str, now: Cycle, value: u64) {
        let s = self.slot(name, now);
        *s = (*s).max(value);
    }

    /// Iterates the recorded series in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &[u64])> {
        self.series.iter().map(|(k, v)| (*k, v.as_slice()))
    }
}

/// The machine-wide telemetry registry: named counters, gauges,
/// histograms, a cycle-windowed [`Sampler`], and event marks.
///
/// A *disarmed* registry ([`Registry::disarmed`], the default) reduces
/// every record call to one branch and never allocates; an *armed* one
/// ([`Registry::armed`]) accumulates everything and can be summarized
/// with [`Registry::snapshot`]. Names are `&'static str` so the hot
/// recording paths never build strings; dynamically-named derived series
/// (per-cluster, per-bank) are pushed into the [`Snapshot`] at
/// summary time instead.
#[derive(Debug, Clone)]
pub struct Registry {
    armed: bool,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    sampler: Sampler,
    marks: BTreeMap<&'static str, Vec<(Cycle, u64)>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::disarmed()
    }
}

impl Registry {
    /// A disarmed registry: every record call is a no-op.
    pub fn disarmed() -> Self {
        Registry {
            armed: false,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            sampler: Sampler::new(1),
            marks: BTreeMap::new(),
        }
    }

    /// An armed registry whose sampler uses `window`-cycle windows.
    pub fn armed(window: Cycle) -> Self {
        Registry {
            armed: true,
            sampler: Sampler::new(window),
            ..Registry::disarmed()
        }
    }

    /// Whether record calls are being accumulated.
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Increments counter `name` by one.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to counter `name`.
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        if self.armed {
            *self.counters.entry(name).or_insert(0) += n;
        }
    }

    /// Sets gauge `name` to `value` (last write wins).
    #[inline]
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        if self.armed {
            self.gauges.insert(name, value);
        }
    }

    /// Records `v` into histogram `name`.
    #[inline]
    pub fn record_latency(&mut self, name: &'static str, v: u64) {
        if self.armed {
            self.histograms.entry(name).or_default().record(v);
        }
    }

    /// Adds `delta` into time series `name` at cycle `now`.
    #[inline]
    pub fn sample_add(&mut self, name: &'static str, now: Cycle, delta: u64) {
        if self.armed {
            self.sampler.add(name, now, delta);
        }
    }

    /// Raises time series `name`'s window at cycle `now` to `value`.
    #[inline]
    pub fn sample_max(&mut self, name: &'static str, now: Cycle, value: u64) {
        if self.armed {
            self.sampler.observe_max(name, now, value);
        }
    }

    /// Appends a `(cycle, value)` event to mark series `name` (e.g. the
    /// cumulative message count at each barrier).
    #[inline]
    pub fn mark(&mut self, name: &'static str, now: Cycle, value: u64) {
        if self.armed {
            self.marks.entry(name).or_default().push((now, value));
        }
    }

    /// Folds `other` into this registry: counters add, histograms merge
    /// bucket-wise, sampler series add element-wise (window sizes must
    /// match), gauges are overwritten by `other`'s values (last write
    /// wins, as with [`Registry::set_gauge`]), and marks append in
    /// `other`'s record order.
    ///
    /// Merging is associative, and commutative for everything except
    /// gauge overwrites and mark order — so callers that need
    /// deterministic output (the sharded executor folding per-lane
    /// scratch registries) must merge in a fixed order (lane 0, 1, …).
    ///
    /// Merging into a disarmed registry is a no-op, mirroring every
    /// other record call.
    pub fn merge_from(&mut self, other: &Registry) {
        if !self.armed {
            return;
        }
        for (name, n) in &other.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name, *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
        debug_assert_eq!(
            self.sampler.window, other.sampler.window,
            "merging samplers with different windows misaligns every series"
        );
        for (name, src) in &other.sampler.series {
            let dst = self.sampler.series.entry(name).or_default();
            if dst.len() < src.len() {
                dst.resize(src.len(), 0);
            }
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += s;
            }
        }
        for (name, v) in &other.marks {
            self.marks.entry(name).or_default().extend_from_slice(v);
        }
    }

    /// Read access to counter `name` (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Read access to histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Summarizes everything recorded so far into a [`Snapshot`] (sorted,
    /// self-contained, serializable). Derived values may be pushed into
    /// the snapshot afterwards; call [`Snapshot::finalize`] before
    /// serializing.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.to_string(), h.summary()))
                .collect(),
            window: self.sampler.window(),
            series: self
                .sampler
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_vec()))
                .collect(),
            marks: self.marks.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        }
    }
}

/// A self-contained, serializable summary of a [`Registry`], plus any
/// derived series pushed in by the machine (per-cluster and per-bank
/// breakdowns, link utilization, …).
///
/// All collections are name-sorted by [`Snapshot::finalize`], and
/// [`Snapshot::to_json`] emits them in that order, so serialization is
/// deterministic: the same run produces the same bytes regardless of how
/// many sweep workers ran beside it.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Monotonic event counts, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time values, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Latency/size distributions, name-sorted.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Sampler window size in cycles.
    pub window: Cycle,
    /// Cycle-windowed time series (one value per window), name-sorted.
    pub series: Vec<(String, Vec<u64>)>,
    /// Event marks: `(cycle, value)` pairs in record order, name-sorted.
    pub marks: Vec<(String, Vec<(Cycle, u64)>)>,
}

impl Snapshot {
    /// Pushes a derived counter (sorted on [`Snapshot::finalize`]).
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Pushes a derived gauge (sorted on [`Snapshot::finalize`]).
    pub fn push_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.push((name.into(), value));
    }

    /// Name-sorts every collection; call after pushing derived values and
    /// before serializing.
    pub fn finalize(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        self.series.sort_by(|a, b| a.0.cmp(&b.0));
        self.marks.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Serializes the snapshot as one deterministic JSON object with keys
    /// `counters`, `gauges`, `histograms`, `series` (`{window, data}`),
    /// and `marks` — the same hand-rolled, dependency-free emission style
    /// as `cohesion_testkit::bench`.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", esc(k), v))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", esc(k), fmt_f64(*v)))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                    esc(k),
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    fmt_f64(h.mean),
                    fmt_f64(h.p50),
                    fmt_f64(h.p90),
                    fmt_f64(h.p99)
                )
            })
            .collect();
        let series: Vec<String> = self
            .series
            .iter()
            .map(|(k, v)| {
                let vals: Vec<String> = v.iter().map(|x| x.to_string()).collect();
                format!("\"{}\":[{}]", esc(k), vals.join(","))
            })
            .collect();
        let marks: Vec<String> = self
            .marks
            .iter()
            .map(|(k, v)| {
                let pairs: Vec<String> = v.iter().map(|(c, x)| format!("[{c},{x}]")).collect();
                format!("\"{}\":[{}]", esc(k), pairs.join(","))
            })
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}},\"series\":{{\"window\":{},\"data\":{{{}}}}},\"marks\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(","),
            self.window,
            series.join(","),
            marks.join(",")
        )
    }
}

/// Deterministic JSON number formatting for gauges and percentiles:
/// fixed three-decimal notation (values here are cycle counts and rates,
/// never astronomically large), with `-0.000` normalized to `0.000`.
fn fmt_f64(v: f64) -> String {
    let s = format!("{v:.3}");
    if s == "-0.000" {
        "0.000".to_string()
    } else {
        s
    }
}

/// Minimal JSON string escaping for metric names (backslash, quote, and
/// control characters; names are ASCII in practice).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_and_bounds_agree() {
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(Histogram::bucket_of(hi), i, "hi of bucket {i}");
        }
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    fn histogram_exact_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 111);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.2).abs() < 1e-9);
        assert_eq!(h.percentile(1.0), 100.0);
        let p50 = h.percentile(0.5);
        assert!((0.0..=100.0).contains(&p50));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.summary().p99, 0.0);
    }

    #[test]
    fn merge_matches_concatenated_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 9, 27] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 81, 243] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.buckets(), both.buckets());
    }

    #[test]
    fn sampler_windows_and_growth() {
        let mut s = Sampler::new(100);
        s.add("m", 0, 1);
        s.add("m", 99, 1);
        s.add("m", 100, 5);
        s.add("m", 550, 2);
        s.observe_max("occ", 120, 7);
        s.observe_max("occ", 130, 3);
        let series: Vec<_> = s.iter().collect();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], ("m", &[2, 5, 0, 0, 0, 2][..]));
        assert_eq!(series[1], ("occ", &[0, 7][..]));
    }

    #[test]
    fn disarmed_registry_records_nothing() {
        let mut m = Registry::disarmed();
        m.inc("a");
        m.record_latency("h", 9);
        m.sample_add("s", 10, 1);
        m.mark("mk", 5, 5);
        m.set_gauge("g", 1.0);
        let snap = m.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.series.is_empty());
        assert!(snap.marks.is_empty());
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let mut m = Registry::armed(10);
        m.inc("z/second");
        m.inc("a/first");
        m.record_latency("lat", 4);
        m.sample_add("traffic", 25, 3);
        m.mark("barrier", 30, 12);
        m.set_gauge("occ", 1.5);
        let mut snap = m.snapshot();
        snap.push_counter("derived/mid", 7);
        snap.finalize();
        let json = snap.to_json();
        assert_eq!(snap.counters[0].0, "a/first");
        assert_eq!(snap.counters[1].0, "derived/mid");
        let a = json.find("a/first").unwrap();
        let d = json.find("derived/mid").unwrap();
        let z = json.find("z/second").unwrap();
        assert!(a < d && d < z);
        assert!(json.contains("\"series\":{\"window\":10,\"data\":{\"traffic\":[0,0,3]}}"));
        assert!(json.contains("\"marks\":{\"barrier\":[[30,12]]}"));
        assert!(json.contains("\"occ\":1.500"));
        // Stable across repeated serialization.
        assert_eq!(json, snap.to_json());
    }

    #[test]
    fn merge_from_matches_single_registry_recording() {
        let mut whole = Registry::armed(10);
        let mut a = Registry::armed(10);
        let mut b = Registry::armed(10);
        for (m, k) in [(&mut whole, 3u64), (&mut a, 3)] {
            m.add("hits", k);
            m.record_latency("lat", 7);
            m.sample_add("traffic", 5, 2);
            m.mark("barrier", 10, 1);
        }
        for (m, k) in [(&mut whole, 4u64), (&mut b, 4)] {
            m.add("hits", k);
            m.add("misses", 1);
            m.record_latency("lat", 70);
            m.sample_add("traffic", 25, 1);
            m.set_gauge("occ", 2.5);
        }
        a.merge_from(&b);
        let mut merged = a.snapshot();
        let mut reference = whole.snapshot();
        merged.finalize();
        reference.finalize();
        assert_eq!(merged.to_json(), reference.to_json());
    }

    #[test]
    fn merge_into_disarmed_is_noop() {
        let mut dst = Registry::disarmed();
        let mut src = Registry::armed(1);
        src.inc("a");
        dst.merge_from(&src);
        assert!(dst.snapshot().counters.is_empty());
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(fmt_f64(-0.0001), "0.000");
    }
}
