//! The message taxonomy of Figures 2 and 8.
//!
//! The paper's central quantitative claim is about *messages sent by the L2s
//! toward the L3/directory*, broken into eight classes. Every message the
//! simulated L2s emit is tagged with one of these classes; the benchmark
//! harness sums them per cluster and normalizes to SWcc exactly as the
//! figures do.

use std::fmt;

/// Classification of an L2→L3 message, matching the stacked-bar legend of
/// Figures 2 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MessageClass {
    /// Demand data read request (load miss in the L2).
    ReadRequest,
    /// Write/ownership request (store miss under HWcc, needing M state).
    WriteRequest,
    /// Instruction fetch request (L1I miss that also misses in the L2).
    InstructionRequest,
    /// Uncached or atomic read-modify-write operation performed at the L3.
    UncachedAtomic,
    /// Writeback of a dirty line evicted from the L2 by capacity/conflict.
    CacheEviction,
    /// Writeback triggered by an explicit SWcc flush instruction.
    SoftwareFlush,
    /// Notification that a clean HWcc line was evicted (the directory does
    /// not support silent evictions; §2.1).
    ReadRelease,
    /// Response by the L2 to a directory probe (invalidation ack or data
    /// writeback demanded by the directory).
    ProbeResponse,
}

impl MessageClass {
    /// All classes, in the order the figures stack them (bottom to top:
    /// reads first, probe responses last).
    pub const ALL: [MessageClass; 8] = [
        MessageClass::ReadRequest,
        MessageClass::WriteRequest,
        MessageClass::InstructionRequest,
        MessageClass::UncachedAtomic,
        MessageClass::CacheEviction,
        MessageClass::SoftwareFlush,
        MessageClass::ReadRelease,
        MessageClass::ProbeResponse,
    ];

    /// Index of this class into [`MessageClass::ALL`] (and into the fixed
    /// arrays used by [`crate::stats::MessageCounts`]).
    pub fn index(self) -> usize {
        match self {
            MessageClass::ReadRequest => 0,
            MessageClass::WriteRequest => 1,
            MessageClass::InstructionRequest => 2,
            MessageClass::UncachedAtomic => 3,
            MessageClass::CacheEviction => 4,
            MessageClass::SoftwareFlush => 5,
            MessageClass::ReadRelease => 6,
            MessageClass::ProbeResponse => 7,
        }
    }

    /// The figure-legend label for this class.
    pub fn label(self) -> &'static str {
        match self {
            MessageClass::ReadRequest => "Read Requests",
            MessageClass::WriteRequest => "Write Requests",
            MessageClass::InstructionRequest => "Instruction Requests",
            MessageClass::UncachedAtomic => "Uncached/Atomic Operations",
            MessageClass::CacheEviction => "Cache Evictions",
            MessageClass::SoftwareFlush => "Software Flushes",
            MessageClass::ReadRelease => "Read Releases",
            MessageClass::ProbeResponse => "Probe Responses",
        }
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, class) in MessageClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = MessageClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), MessageClass::ALL.len());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(
            MessageClass::UncachedAtomic.to_string(),
            "Uncached/Atomic Operations"
        );
    }
}
