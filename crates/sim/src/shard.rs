//! Sharded event scheduling for conservative parallel simulation.
//!
//! [`LaneQueues`] partitions one logical event stream across a fixed set
//! of *lanes* (in the machine: one lane per cluster), each backed by its
//! own timing-wheel [`EventQueue`]. The executor drains events in
//! *windows*: [`LaneQueues::pop_window`] collects every event scheduled
//! strictly before `horizon = min-pending-cycle + window` from all lanes
//! and returns them merged under the fixed rule
//!
//! > ascending `(cycle, lane, seq)`
//!
//! where `seq` is the lane-local pop order (itself the `(cycle, seq)`
//! pop order the per-lane wheel guarantees). Within a window, events in
//! *different* lanes may be processed concurrently as long as they touch
//! only lane-private state; the merged order is what any cross-lane
//! (serial) work must follow.
//!
//! # Determinism contract
//!
//! The lane count is part of the *logical* configuration (the machine's
//! cluster count), not the host parallelism: batch contents and merge
//! order depend only on the sequence of [`LaneQueues::schedule`] calls
//! and the window size. How many worker threads execute a batch — one or
//! sixteen — cannot be observed through this type, which is the
//! foundation of the `--shards N` byte-identity guarantee.

use crate::event::EventQueue;
use crate::Cycle;

/// One event drained from a [`LaneQueues`] window, tagged with its merge
/// key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEvent<E> {
    /// Cycle the event was scheduled for.
    pub cycle: Cycle,
    /// Lane the event belongs to.
    pub lane: u32,
    /// Lane-local pop sequence within this window (0, 1, 2, …).
    pub seq: u32,
    /// The event payload.
    pub payload: E,
}

/// A fixed set of per-lane timing-wheel event queues with windowed,
/// deterministically-merged draining. See the module docs for the
/// ordering contract.
#[derive(Debug, Clone)]
pub struct LaneQueues<E> {
    lanes: Vec<EventQueue<E>>,
}

impl<E: Copy> LaneQueues<E> {
    /// Creates `lanes` empty queues.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes >= 1, "need at least one lane");
        LaneQueues {
            lanes: (0..lanes).map(|_| EventQueue::new()).collect(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Schedules `payload` on `lane` at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `at` is before the lane's
    /// current time (its last popped cycle).
    pub fn schedule(&mut self, lane: usize, at: Cycle, payload: E) {
        self.lanes[lane].schedule(at, payload);
    }

    /// Direct access to one lane's queue — for a lane worker rescheduling
    /// its own cores during a parallel window.
    pub fn lane_mut(&mut self, lane: usize) -> &mut EventQueue<E> {
        &mut self.lanes[lane]
    }

    /// The per-lane queues as a mutable slice (for split borrows across
    /// lane workers).
    pub fn as_mut_slice(&mut self) -> &mut [EventQueue<E>] {
        &mut self.lanes
    }

    /// Earliest pending cycle across all lanes, or `None` when every lane
    /// is empty.
    pub fn next_cycle(&self) -> Option<Cycle> {
        self.lanes.iter().filter_map(EventQueue::peek_cycle).min()
    }

    /// Total pending events across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(EventQueue::len).sum()
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(EventQueue::is_empty)
    }

    /// Total `schedule` calls across all lanes (matches the single-queue
    /// `events/scheduled` accounting: one count per call, independent of
    /// the lane partition only in total).
    pub fn scheduled(&self) -> u64 {
        self.lanes.iter().map(EventQueue::scheduled).sum()
    }

    /// Sum of each lane's high-water mark of pending events. The lane
    /// partition is fixed by the machine configuration, so this is
    /// deterministic — but it is a per-lane sum, not the high-water mark
    /// of one merged queue.
    pub fn max_pending(&self) -> usize {
        self.lanes.iter().map(EventQueue::max_pending).sum()
    }

    /// Drains the next window into `batch` (cleared first): every event
    /// with `cycle < min-pending + window`, merged by ascending
    /// `(cycle, lane, seq)`. Returns the exclusive horizon, or `None`
    /// (leaving `batch` empty) when all lanes are empty.
    ///
    /// A `window` of zero still drains the events at exactly the minimum
    /// pending cycle (the horizon is at least one cycle past it), so the
    /// drain always makes progress.
    pub fn pop_window(&mut self, window: Cycle, batch: &mut Vec<BatchEvent<E>>) -> Option<Cycle> {
        batch.clear();
        let start = self.next_cycle()?;
        let horizon = start + window.max(1);
        for (lane, q) in self.lanes.iter_mut().enumerate() {
            let mut seq = 0u32;
            while q.peek_cycle().is_some_and(|c| c < horizon) {
                let (cycle, payload) = q.pop().expect("peeked");
                batch.push(BatchEvent {
                    cycle,
                    lane: lane as u32,
                    seq,
                    payload,
                });
                seq += 1;
            }
        }
        // Lanes were visited in order and each lane pops in (cycle, seq)
        // order, so sorting by the full key is a deterministic merge.
        batch.sort_unstable_by_key(|e| (e.cycle, e.lane, e.seq));
        Some(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lane_matches_plain_queue_order() {
        let mut lq = LaneQueues::new(1);
        let mut q = EventQueue::new();
        for (at, p) in [(5u64, 1u32), (3, 2), (5, 3), (9, 4)] {
            lq.schedule(0, at, p);
            q.schedule(at, p);
        }
        let mut batch = Vec::new();
        let mut merged = Vec::new();
        while lq.pop_window(1000, &mut batch).is_some() {
            merged.extend(batch.iter().map(|e| (e.cycle, e.payload)));
        }
        let mut reference = Vec::new();
        while let Some(ev) = q.pop() {
            reference.push(ev);
        }
        assert_eq!(merged, reference);
    }

    #[test]
    fn window_bounds_the_drain() {
        let mut lq = LaneQueues::new(2);
        lq.schedule(0, 10, 'a');
        lq.schedule(1, 14, 'b');
        lq.schedule(0, 15, 'c'); // exactly at the horizon: next window
        lq.schedule(1, 30, 'd');
        let mut batch = Vec::new();
        let horizon = lq.pop_window(5, &mut batch).unwrap();
        assert_eq!(horizon, 15);
        let got: Vec<char> = batch.iter().map(|e| e.payload).collect();
        assert_eq!(got, vec!['a', 'b']);
        let horizon = lq.pop_window(5, &mut batch).unwrap();
        assert_eq!(horizon, 20);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].payload, 'c');
    }

    #[test]
    fn same_cycle_events_merge_by_lane_then_seq() {
        let mut lq = LaneQueues::new(3);
        lq.schedule(2, 7, 'x');
        lq.schedule(0, 7, 'y');
        lq.schedule(0, 7, 'z');
        lq.schedule(1, 7, 'w');
        let mut batch = Vec::new();
        lq.pop_window(64, &mut batch);
        let got: Vec<(u32, u32, char)> = batch.iter().map(|e| (e.lane, e.seq, e.payload)).collect();
        assert_eq!(got, vec![(0, 0, 'y'), (0, 1, 'z'), (1, 0, 'w'), (2, 0, 'x')]);
    }

    #[test]
    fn zero_window_still_progresses() {
        let mut lq = LaneQueues::new(2);
        lq.schedule(0, 4, 1u32);
        lq.schedule(1, 4, 2);
        let mut batch = Vec::new();
        assert_eq!(lq.pop_window(0, &mut batch), Some(5));
        assert_eq!(batch.len(), 2);
        assert!(lq.pop_window(0, &mut batch).is_none());
        assert!(batch.is_empty());
    }

    #[test]
    fn stats_sum_over_lanes() {
        let mut lq = LaneQueues::new(2);
        lq.schedule(0, 1, 1u32);
        lq.schedule(0, 2, 2);
        lq.schedule(1, 1, 3);
        assert_eq!(lq.scheduled(), 3);
        assert_eq!(lq.len(), 3);
        assert_eq!(lq.max_pending(), 3);
        assert_eq!(lq.next_cycle(), Some(1));
        let mut batch = Vec::new();
        lq.pop_window(100, &mut batch);
        assert!(lq.is_empty());
        assert_eq!(lq.scheduled(), 3, "scheduled counts calls, not occupancy");
    }
}
