//! Out-of-order-safe bandwidth reservation.
//!
//! The transaction-oriented simulator computes some resource uses at times
//! ahead of the event clock (a non-blocking store's directory round trip, a
//! probe's network hops). A naive "next free time" counter would let such a
//! future reservation block *earlier* requests that arrive afterwards —
//! phantom head-of-line blocking that penalizes whichever protocol issues
//! more asynchronous work. [`SlotReserver`] instead books capacity per
//! cycle-window: a request at cycle `t` takes the first window at or after
//! `t` with spare capacity, regardless of what has been booked in the
//! future.

use std::collections::BTreeMap;

use crate::Cycle;

/// Books `capacity` uses per `2^window_log2`-cycle window.
///
/// # Example
///
/// ```
/// use cohesion_sim::slots::SlotReserver;
///
/// let mut port = SlotReserver::new(0, 1); // one grant per cycle
/// assert_eq!(port.reserve(100), 100);     // a transaction in the future
/// assert_eq!(port.reserve(10), 10);       // does not block earlier work
/// assert_eq!(port.reserve(100), 101);     // but its slot stays taken
/// ```
#[derive(Debug, Clone)]
pub struct SlotReserver {
    window_log2: u32,
    capacity: u32,
    used: BTreeMap<u64, u32>,
    reservations: u64,
    hi_window: u64,
}

impl SlotReserver {
    /// Creates a reserver granting `capacity` uses per window of
    /// `2^window_log2` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(window_log2: u32, capacity: u32) -> Self {
        assert!(capacity >= 1, "a resource needs capacity");
        SlotReserver {
            window_log2,
            capacity,
            used: BTreeMap::new(),
            reservations: 0,
            hi_window: 0,
        }
    }

    /// Reserves one use at or after `now`; returns the cycle the use is
    /// granted (the later of `now` and the start of the window with spare
    /// capacity).
    pub fn reserve(&mut self, now: Cycle) -> Cycle {
        let mut w = now >> self.window_log2;
        loop {
            let u = self.used.entry(w).or_insert(0);
            if *u < self.capacity {
                *u += 1;
                break;
            }
            w += 1;
        }
        self.reservations += 1;
        self.hi_window = self.hi_window.max(w);
        // Bound memory: windows far behind the frontier can no longer be
        // targeted (event time is monotonic and transaction lookahead is
        // bounded), so drop them.
        if self.used.len() > 16_384 {
            let cutoff = self.hi_window.saturating_sub(8_192);
            self.used = self.used.split_off(&cutoff);
        }
        now.max(w << self.window_log2)
    }

    /// Total reservations made.
    pub fn reservations(&self) -> u64 {
        self.reservations
    }

    /// The configured capacity per window.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_capacity_per_window() {
        let mut r = SlotReserver::new(0, 1); // one per cycle
        assert_eq!(r.reserve(10), 10);
        assert_eq!(r.reserve(10), 11);
        assert_eq!(r.reserve(10), 12);
        assert_eq!(r.reservations(), 3);
    }

    #[test]
    fn future_bookings_do_not_block_the_past() {
        let mut r = SlotReserver::new(0, 1);
        assert_eq!(r.reserve(1000), 1000); // a transaction far ahead
        assert_eq!(r.reserve(10), 10, "earlier request unaffected");
        assert_eq!(r.reserve(1000), 1001, "but the future slot is taken");
    }

    #[test]
    fn wider_windows_pool_capacity() {
        let mut r = SlotReserver::new(2, 4); // 4 per 4-cycle window
        for _ in 0..4 {
            assert_eq!(r.reserve(8), 8);
        }
        // Fifth in the window slides to the next one.
        assert_eq!(r.reserve(8), 12);
    }

    #[test]
    fn reserve_returns_at_least_now() {
        let mut r = SlotReserver::new(4, 16);
        assert_eq!(r.reserve(19), 19, "mid-window grant keeps the caller's time");
    }

    #[test]
    fn memory_stays_bounded() {
        let mut r = SlotReserver::new(0, 1);
        for i in 0..100_000u64 {
            r.reserve(i * 3);
        }
        assert!(r.used.len() <= 16_384 + 1);
    }
}
