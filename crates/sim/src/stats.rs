//! Statistics infrastructure: message matrices, time-weighted occupancy,
//! and the coherence-instruction usefulness counters behind Figure 3.

use crate::msg::MessageClass;
use crate::Cycle;

/// Per-class message counts for one traffic source (one L2).
///
/// Figures 2 and 8 plot the machine-wide sum of these, normalized to SWcc.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageCounts {
    counts: [u64; 8],
}

impl MessageCounts {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of class `class`.
    pub fn record(&mut self, class: MessageClass) {
        self.counts[class.index()] += 1;
    }

    /// Records `n` messages of class `class`.
    pub fn record_n(&mut self, class: MessageClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Count for one class.
    pub fn count(&self, class: MessageClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &MessageCounts) {
        for i in 0..8 {
            self.counts[i] += other.counts[i];
        }
    }

    /// Iterates `(class, count)` pairs in figure-stacking order.
    pub fn iter(&self) -> impl Iterator<Item = (MessageClass, u64)> + '_ {
        MessageClass::ALL.iter().map(|&c| (c, self.counts[c.index()]))
    }
}

/// A time-weighted occupancy integrator.
///
/// Figure 9c reports the time-average and maximum number of directory
/// entries allocated. Rather than sampling every 1000 cycles as the paper's
/// simulator did, we integrate exactly: every occupancy change accumulates
/// `level × dt`. The exact integral equals the limit of the paper's sampling
/// scheme, so the comparison is conservative.
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    level: u64,
    max: u64,
    weighted_sum: u128,
    last_change: Cycle,
}

impl TimeWeighted {
    /// Creates an integrator at level 0, cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current level at cycle `now`.
    ///
    /// Updates arriving out of time order (the transaction-oriented
    /// simulator computes some completion times ahead of the event clock)
    /// are clamped to the latest update time; the integral stays exact to
    /// within the transaction skew.
    pub fn set(&mut self, now: Cycle, level: u64) {
        let now = now.max(self.last_change);
        let dt = now.saturating_sub(self.last_change);
        self.weighted_sum += self.level as u128 * dt as u128;
        self.last_change = now;
        self.level = level;
        self.max = self.max.max(level);
    }

    /// Adjusts the level by `delta` at cycle `now`.
    pub fn add(&mut self, now: Cycle, delta: i64) {
        let level = if delta >= 0 {
            self.level + delta as u64
        } else {
            self.level
                .checked_sub((-delta) as u64)
                .expect("occupancy went negative")
        };
        self.set(now, level);
    }

    /// Current level.
    pub fn level(&self) -> u64 {
        self.level
    }

    /// Maximum level ever observed.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Time-average level over `[0, end]`.
    ///
    /// Returns 0.0 for a zero-length interval.
    pub fn average(&self, end: Cycle) -> f64 {
        if end == 0 {
            return 0.0;
        }
        let sum =
            self.weighted_sum + self.level as u128 * end.saturating_sub(self.last_change) as u128;
        sum as f64 / end as f64
    }
}

/// Usefulness accounting for explicit SWcc coherence instructions (Figure 3).
///
/// An invalidation or writeback instruction is *useful* when it operates on a
/// line actually valid in the local L2; instructions that target lines
/// already evicted are the inefficiency Figure 3 quantifies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceInstrStats {
    /// Software invalidations issued.
    pub invalidations_issued: u64,
    /// Software invalidations that found a valid line in the L2.
    pub invalidations_useful: u64,
    /// Software writebacks (flushes) issued.
    pub writebacks_issued: u64,
    /// Software writebacks that found a valid (dirty) line in the L2.
    pub writebacks_useful: u64,
}

impl CoherenceInstrStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &CoherenceInstrStats) {
        self.invalidations_issued += other.invalidations_issued;
        self.invalidations_useful += other.invalidations_useful;
        self.writebacks_issued += other.writebacks_issued;
        self.writebacks_useful += other.writebacks_useful;
    }

    /// Fraction of invalidations that were useful (0 when none issued).
    pub fn invalidation_usefulness(&self) -> f64 {
        ratio(self.invalidations_useful, self.invalidations_issued)
    }

    /// Fraction of writebacks that were useful (0 when none issued).
    pub fn writeback_usefulness(&self) -> f64 {
        ratio(self.writebacks_useful, self.writebacks_issued)
    }

    /// Combined usefulness across both instruction kinds.
    pub fn combined_usefulness(&self) -> f64 {
        ratio(
            self.invalidations_useful + self.writebacks_useful,
            self.invalidations_issued + self.writebacks_issued,
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_counts_record_and_total() {
        let mut m = MessageCounts::new();
        m.record(MessageClass::ReadRequest);
        m.record(MessageClass::ReadRequest);
        m.record_n(MessageClass::ReadRelease, 5);
        assert_eq!(m.count(MessageClass::ReadRequest), 2);
        assert_eq!(m.count(MessageClass::ReadRelease), 5);
        assert_eq!(m.count(MessageClass::WriteRequest), 0);
        assert_eq!(m.total(), 7);
    }

    #[test]
    fn message_counts_merge() {
        let mut a = MessageCounts::new();
        a.record(MessageClass::SoftwareFlush);
        let mut b = MessageCounts::new();
        b.record(MessageClass::SoftwareFlush);
        b.record(MessageClass::ProbeResponse);
        a.merge(&b);
        assert_eq!(a.count(MessageClass::SoftwareFlush), 2);
        assert_eq!(a.count(MessageClass::ProbeResponse), 1);
    }

    #[test]
    fn time_weighted_average_exact() {
        let mut t = TimeWeighted::new();
        t.set(0, 10); // level 10 over [0, 100)
        t.set(100, 20); // level 20 over [100, 200)
        assert_eq!(t.max(), 20);
        assert!((t.average(200) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add_tracks_level() {
        let mut t = TimeWeighted::new();
        t.add(0, 3);
        t.add(50, 2);
        t.add(75, -5);
        assert_eq!(t.level(), 0);
        assert_eq!(t.max(), 5);
        // 3*50 + 5*25 + 0*25 = 275 over 100 cycles
        assert!((t.average(100) - 2.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn time_weighted_underflow_panics() {
        let mut t = TimeWeighted::new();
        t.add(0, -1);
    }

    #[test]
    fn usefulness_ratios() {
        let s = CoherenceInstrStats {
            invalidations_issued: 100,
            invalidations_useful: 25,
            writebacks_issued: 50,
            writebacks_useful: 50,
        };
        assert!((s.invalidation_usefulness() - 0.25).abs() < 1e-12);
        assert!((s.writeback_usefulness() - 1.0).abs() < 1e-12);
        assert!((s.combined_usefulness() - 0.5).abs() < 1e-12);
        assert_eq!(CoherenceInstrStats::new().combined_usefulness(), 0.0);
    }

    #[test]
    fn average_of_empty_interval_is_zero() {
        let t = TimeWeighted::new();
        assert_eq!(t.average(0), 0.0);
    }
}
