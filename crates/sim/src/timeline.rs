//! The shard-epoch flight recorder: typed wall-clock spans over the
//! sharded executor, with deterministic escalation attribution.
//!
//! The PR 3 metrics registry answers "how much?" in aggregate; this
//! module answers "where does wall-clock time go, and which access class
//! forces serialization?". A [`Timeline`] is a bounded ring of typed
//! [`Span`]s — per-epoch × per-lane phase A steps, phase B serial
//! replays, cache-tier/DRAM service intervals, crew worker park/run
//! intervals — plus escalation events tagged with an
//! [`EscalationCause`]. Like [`crate::tracelog::TraceLog`], the ring
//! drops **oldest-first** when full and counts what it dropped, so a
//! truncated timeline is always an honest suffix.
//!
//! # Determinism contract
//!
//! The recorder splits its content into two strata:
//!
//! * **Deterministic aggregates** — epoch counts, fast-slice counts, and
//!   the per-cause escalation counters. These are functions of simulated
//!   state alone (the batch composition and the A/B split never depend
//!   on host threads), so they are byte-identical at any `--jobs` /
//!   `--shards` value and feed the `cohesion-timeline/v1` summary
//!   document ([`TimelineSnapshot::summary_json`]).
//! * **Wall-clock spans** — host-time measurements that are *only*
//!   exported in the Chrome trace-event file, never in a deterministic
//!   document. Crew worker spans live in their own ring
//!   ([`CrewSpanLog`]) precisely so their host-dependent volume cannot
//!   perturb the main ring's deterministic drop counter.
//!
//! Disarmed (the default), every recording call is an inlined
//! early-return and the recorder allocates nothing — the same
//! zero-cost-when-off contract the metrics registry keeps.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use crate::Cycle;

/// Default main-ring capacity in spans. Large enough to hold a tiny
/// run's full timeline; bigger runs keep an honest suffix (see
/// [`Timeline::dropped`]).
pub const DEFAULT_CAPACITY: usize = 65536;

/// Default per-worker capacity of the crew span ring.
pub const CREW_RING_CAPACITY: usize = 8192;

/// Why a slice left phase A for the serial path. The taxonomy follows
/// the escalation sites of the sharded executor: everything lane-local
/// stays in phase A, and each global resource that forces serialization
/// gets one cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EscalationCause {
    /// A data or instruction line had to be fetched from the L3 and its
    /// home bank is owned by this lane, but a fast-path precondition
    /// failed (DRAM fill with a dirty victim, directory probe, profiled
    /// run, …) so the fetch still serialized.
    L3Local,
    /// A data or instruction line had to be fetched from an L3 bank
    /// owned by another lane — inherently cross-lane, always serial.
    L3Remote,
    /// A store needed the directory: an ownership upgrade, an HWcc miss
    /// transaction, or a non-silent victim bundled with the allocation.
    Directory,
    /// A software flush had a real writeback to send over the NoC.
    Noc,
    /// An atomic operation — uncached by design, always global.
    Atomic,
    /// Task dequeue or barrier arrival traffic (uncached atomics on the
    /// runtime's queue words).
    TaskQueue,
}

impl EscalationCause {
    /// Every cause, in label order as rendered in summaries.
    pub const ALL: [EscalationCause; 6] = [
        EscalationCause::Atomic,
        EscalationCause::Directory,
        EscalationCause::L3Local,
        EscalationCause::L3Remote,
        EscalationCause::Noc,
        EscalationCause::TaskQueue,
    ];

    /// Stable string label used in summaries and trace args.
    pub fn label(self) -> &'static str {
        match self {
            EscalationCause::L3Local => "l3-local",
            EscalationCause::L3Remote => "l3-remote",
            EscalationCause::Directory => "directory",
            EscalationCause::Noc => "noc",
            EscalationCause::Atomic => "atomic",
            EscalationCause::TaskQueue => "task-queue",
        }
    }

    /// Dense index for per-cause counter arrays.
    pub fn index(self) -> usize {
        match self {
            EscalationCause::L3Local => 0,
            EscalationCause::L3Remote => 1,
            EscalationCause::Directory => 2,
            EscalationCause::Noc => 3,
            EscalationCause::Atomic => 4,
            EscalationCause::TaskQueue => 5,
        }
    }

    /// The cause whose [`EscalationCause::index`] is `i`.
    pub fn from_index(i: usize) -> EscalationCause {
        match i {
            0 => EscalationCause::L3Local,
            1 => EscalationCause::L3Remote,
            2 => EscalationCause::Directory,
            3 => EscalationCause::Noc,
            4 => EscalationCause::Atomic,
            _ => EscalationCause::TaskQueue,
        }
    }
}

/// Number of escalation causes (length of per-cause counter arrays).
pub const CAUSES: usize = 6;

/// Which track a span belongs to in the exported trace: one per lane,
/// one per crew worker thread, and one serial track for phase B and the
/// global service path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// The serial thread: phase B replay, L3/DRAM service.
    Serial,
    /// A cluster lane's phase A work (by lane index).
    Lane(u32),
    /// A crew worker thread (by worker index).
    Crew(u32),
}

/// One recorded interval (or instant, when `dur_us == 0` and the name
/// marks an event). Wall-clock fields are microseconds since the
/// recorder's epoch; `cycle` anchors the span in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Exported track.
    pub track: Track,
    /// Span kind (`"phase_a"`, `"phase_b"`, `"escalate"`,
    /// `"l3_service"`, `"dram_service"`, `"crew_run"`, `"crew_park"`).
    pub name: &'static str,
    /// Wall-clock start, microseconds since the recorder epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds (0 for instant events).
    pub dur_us: u64,
    /// Simulated cycle the span is anchored to.
    pub cycle: Cycle,
    /// Escalation cause, for `"escalate"` events.
    pub cause: Option<EscalationCause>,
}

/// A frozen copy of a [`Timeline`], taken at end of run. The
/// wall-clock spans feed the Chrome trace export; the aggregate
/// counters feed the deterministic `cohesion-timeline/v1` summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSnapshot {
    /// Main-ring spans (lane/serial tracks), oldest first.
    pub spans: Vec<Span>,
    /// Spans dropped from the main ring (oldest-first eviction). A
    /// deterministic function of the run: the span *count* never
    /// depends on host threads, only their wall-clock fields do.
    pub dropped: u64,
    /// Crew worker park/run spans (host-dependent; trace export only).
    pub crew_spans: Vec<Span>,
    /// Spans dropped from the crew rings (host-dependent).
    pub crew_dropped: u64,
    /// Windows (epochs) pumped by the sharded executor.
    pub epochs: u64,
    /// Slices that completed entirely in phase A.
    pub fast_slices: u64,
    /// L2-miss line fetches serviced entirely in phase A on a
    /// lane-owned L3 bank — the events that would have been
    /// [`EscalationCause::L3Local`] escalations without bank ownership.
    pub l3_fast: u64,
    /// Escalated slices by [`EscalationCause::index`].
    pub escalated: [u64; CAUSES],
}

impl TimelineSnapshot {
    /// Total slices attempted in phase A.
    pub fn slices(&self) -> u64 {
        self.fast_slices + self.escalated_total()
    }

    /// Total escalations across all causes.
    pub fn escalated_total(&self) -> u64 {
        self.escalated.iter().sum()
    }

    /// The deterministic per-run summary object for the
    /// `cohesion-timeline/v1` document: counters and the escalation
    /// rate only — no wall-clock field ever appears here, which is what
    /// keeps the document byte-identical at any `--jobs`/`--shards`.
    pub fn summary_json(&self) -> String {
        let slices = self.slices();
        let rate = if slices == 0 {
            0.0
        } else {
            self.escalated_total() as f64 / slices as f64
        };
        let mut causes = String::new();
        for (i, c) in EscalationCause::ALL.iter().enumerate() {
            if i > 0 {
                causes.push_str(", ");
            }
            causes.push_str(&format!("\"{}\": {}", c.label(), self.escalated[c.index()]));
        }
        format!(
            "{{\"dropped_spans\": {}, \"epochs\": {}, \"escalated\": {{{}}}, \
             \"escalation_rate\": {:.6}, \"fast\": {}, \"l3_fast\": {}, \"slices\": {}}}",
            self.dropped, self.epochs, causes, rate, self.fast_slices, self.l3_fast, slices
        )
    }
}

/// The machine-owned flight recorder. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct Timeline {
    armed: bool,
    epoch: Instant,
    ring: VecDeque<Span>,
    capacity: usize,
    dropped: u64,
    crew_spans: Vec<Span>,
    crew_dropped: u64,
    epochs: u64,
    fast_slices: u64,
    l3_fast: u64,
    escalated: [u64; CAUSES],
}

impl Timeline {
    /// A disarmed recorder: every call an early-return, no allocation.
    pub fn disarmed() -> Timeline {
        Timeline {
            armed: false,
            epoch: Instant::now(),
            ring: VecDeque::new(),
            capacity: 0,
            dropped: 0,
            crew_spans: Vec::new(),
            crew_dropped: 0,
            epochs: 0,
            fast_slices: 0,
            l3_fast: 0,
            escalated: [0; CAUSES],
        }
    }

    /// An armed recorder whose main ring holds up to `capacity` spans.
    pub fn armed(capacity: usize) -> Timeline {
        Timeline {
            armed: true,
            epoch: Instant::now(),
            ring: VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY)),
            capacity: capacity.max(1),
            ..Timeline::disarmed()
        }
    }

    /// Whether the recorder keeps anything at all.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// The wall-clock instant all span timestamps are relative to.
    pub fn epoch_instant(&self) -> Instant {
        self.epoch
    }

    /// Microseconds elapsed since the recorder epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Starts a wall-clock measurement: `Some(now)` when armed, `None`
    /// (one branch, nothing measured) when disarmed.
    pub fn start(&self) -> Option<u64> {
        self.armed.then(|| self.now_us())
    }

    /// Pushes a span into the main ring, evicting oldest-first when the
    /// ring is full (the evicted span is counted in
    /// [`Timeline::dropped`]).
    pub fn push(&mut self, span: Span) {
        if !self.armed {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(span);
    }

    /// Records a serial-track service span that began at `start` (a
    /// token from [`Timeline::start`]); no-op when the token is `None`.
    pub fn service(&mut self, name: &'static str, start: Option<u64>, cycle: Cycle) {
        let Some(t0) = start else { return };
        let now = self.now_us();
        self.push(Span {
            track: Track::Serial,
            name,
            start_us: t0,
            dur_us: now.saturating_sub(t0),
            cycle,
            cause: None,
        });
    }

    /// Counts one executor window (epoch).
    pub fn note_window(&mut self) {
        if self.armed {
            self.epochs += 1;
        }
    }

    /// Drains a lane's window-local buffer into the main ring (call in
    /// fixed lane order for a deterministic drop sequence) and folds its
    /// deterministic counters.
    pub fn absorb_lane(&mut self, lane: &mut LaneTimeline) {
        if !self.armed || !lane.armed {
            return;
        }
        self.fast_slices += std::mem::take(&mut lane.fast);
        self.l3_fast += std::mem::take(&mut lane.l3_fast);
        for i in 0..CAUSES {
            self.escalated[i] += lane.escalated[i];
            lane.escalated[i] = 0;
        }
        for s in lane.spans.drain(..) {
            self.push(s);
        }
    }

    /// Drains the crew span rings (worker order) into the snapshot-only
    /// crew section. Crew volume is host-dependent, so it never touches
    /// the main ring or its deterministic drop counter.
    pub fn absorb_crew(&mut self, log: &CrewSpanLog) {
        if !self.armed {
            return;
        }
        let (spans, dropped) = log.drain();
        self.crew_spans.extend(spans);
        self.crew_dropped += dropped;
    }

    /// Spans dropped from the main ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Main-ring spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.ring.iter()
    }

    /// Freezes the recorder into a [`TimelineSnapshot`], or `None` when
    /// disarmed.
    pub fn snapshot(&self) -> Option<TimelineSnapshot> {
        if !self.armed {
            return None;
        }
        Some(TimelineSnapshot {
            spans: self.ring.iter().copied().collect(),
            dropped: self.dropped,
            crew_spans: self.crew_spans.clone(),
            crew_dropped: self.crew_dropped,
            epochs: self.epochs,
            fast_slices: self.fast_slices,
            l3_fast: self.l3_fast,
            escalated: self.escalated,
        })
    }
}

/// A lane's window-local recording buffer, absorbed into the machine
/// [`Timeline`] in fixed lane order after every window. Lives in the
/// lane scratch so phase A worker threads record without touching
/// shared state.
#[derive(Debug)]
pub struct LaneTimeline {
    armed: bool,
    epoch: Instant,
    spans: Vec<Span>,
    fast: u64,
    l3_fast: u64,
    escalated: [u64; CAUSES],
}

impl LaneTimeline {
    /// A disarmed buffer (every call an early-return).
    pub fn disarmed() -> LaneTimeline {
        LaneTimeline {
            armed: false,
            epoch: Instant::now(),
            spans: Vec::new(),
            fast: 0,
            l3_fast: 0,
            escalated: [0; CAUSES],
        }
    }

    /// An armed buffer sharing the machine recorder's `epoch` so its
    /// span timestamps land on the same clock.
    pub fn armed(epoch: Instant) -> LaneTimeline {
        LaneTimeline {
            armed: true,
            epoch,
            spans: Vec::new(),
            fast: 0,
            l3_fast: 0,
            escalated: [0; CAUSES],
        }
    }

    /// Whether the buffer records anything.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Microseconds since the shared epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Starts a wall-clock measurement (`None` when disarmed).
    pub fn start(&self) -> Option<u64> {
        self.armed.then(|| self.now_us())
    }

    /// Counts a slice that completed entirely in phase A.
    pub fn note_fast(&mut self) {
        if self.armed {
            self.fast += 1;
        }
    }

    /// Counts an L2-miss line fetch serviced entirely in phase A on a
    /// lane-owned L3 bank (an event that would have escalated as
    /// [`EscalationCause::L3Local`] without bank ownership).
    pub fn note_l3_fast(&mut self) {
        if self.armed {
            self.l3_fast += 1;
        }
    }

    /// Records a service span on the lane's own track that began at
    /// `start` (a token from [`LaneTimeline::start`]); no-op when the
    /// token is `None`. Used for `l3_service` spans serviced in phase A.
    pub fn service(&mut self, name: &'static str, lane: u32, start: Option<u64>, cycle: Cycle) {
        let Some(t0) = start else { return };
        let now = self.now_us();
        self.spans.push(Span {
            track: Track::Lane(lane),
            name,
            start_us: t0,
            dur_us: now.saturating_sub(t0),
            cycle,
            cause: None,
        });
    }

    /// Counts an escalation and records its instant event on the lane's
    /// track.
    pub fn note_escalation(&mut self, lane: u32, cycle: Cycle, cause: EscalationCause) {
        if !self.armed {
            return;
        }
        self.escalated[cause.index()] += 1;
        let now = self.now_us();
        self.spans.push(Span {
            track: Track::Lane(lane),
            name: "escalate",
            start_us: now,
            dur_us: 0,
            cycle,
            cause: Some(cause),
        });
    }

    /// Closes the lane's phase A span for this window; `start` is the
    /// token from [`LaneTimeline::start`].
    pub fn finish_phase_a(&mut self, lane: u32, start: Option<u64>, cycle: Cycle) {
        let Some(t0) = start else { return };
        let now = self.now_us();
        self.spans.push(Span {
            track: Track::Lane(lane),
            name: "phase_a",
            start_us: t0,
            dur_us: now.saturating_sub(t0),
            cycle,
            cause: None,
        });
    }
}

/// One crew worker's bounded span ring.
#[derive(Debug, Default)]
struct CrewRing {
    spans: VecDeque<Span>,
    dropped: u64,
}

/// Shared park/run recording for [`crate::crew::Crew`] worker threads.
/// Each worker owns one ring (its lock is uncontended in steady state);
/// rings are bounded with the same oldest-first drop accounting as the
/// main timeline, tracked separately because worker count — and hence
/// span volume — is host configuration, not simulated state.
#[derive(Debug)]
pub struct CrewSpanLog {
    epoch: Instant,
    capacity: usize,
    rings: Vec<Mutex<CrewRing>>,
}

impl CrewSpanLog {
    /// A log for `workers` crew threads, `capacity` spans per worker,
    /// timestamped against the machine recorder's `epoch`.
    pub fn new(workers: usize, epoch: Instant, capacity: usize) -> CrewSpanLog {
        CrewSpanLog {
            epoch,
            capacity: capacity.max(1),
            rings: (0..workers).map(|_| Mutex::new(CrewRing::default())).collect(),
        }
    }

    /// Microseconds since the shared epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records one span on `worker`'s track. Out-of-range workers are
    /// ignored (defensive; the crew sizes the log).
    pub fn record(&self, worker: usize, name: &'static str, start_us: u64, dur_us: u64) {
        let Some(ring) = self.rings.get(worker) else { return };
        let mut r = ring.lock().unwrap();
        if r.spans.len() == self.capacity {
            r.spans.pop_front();
            r.dropped += 1;
        }
        r.spans.push_back(Span {
            track: Track::Crew(worker as u32),
            name,
            start_us,
            dur_us,
            cycle: 0,
            cause: None,
        });
    }

    /// Drains every ring (worker order) into `(spans, dropped_total)`.
    pub fn drain(&self) -> (Vec<Span>, u64) {
        let mut spans = Vec::new();
        let mut dropped = 0;
        for ring in &self.rings {
            let mut r = ring.lock().unwrap();
            dropped += std::mem::take(&mut r.dropped);
            spans.extend(r.spans.drain(..));
        }
        (spans, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, cycle: Cycle) -> Span {
        Span {
            track: Track::Serial,
            name,
            start_us: cycle,
            dur_us: 1,
            cycle,
            cause: None,
        }
    }

    #[test]
    fn disarmed_records_nothing() {
        let mut tl = Timeline::disarmed();
        tl.push(span("phase_b", 1));
        tl.note_window();
        assert!(tl.start().is_none());
        assert!(tl.snapshot().is_none());
        assert_eq!(tl.spans().count(), 0);
    }

    #[test]
    fn ring_drops_oldest_first_and_counts() {
        let mut tl = Timeline::armed(3);
        for c in 0..5 {
            tl.push(span("phase_b", c));
        }
        assert_eq!(tl.dropped(), 2, "two oldest evicted");
        let kept: Vec<Cycle> = tl.spans().map(|s| s.cycle).collect();
        assert_eq!(kept, vec![2, 3, 4], "the ring is a suffix");
        let snap = tl.snapshot().unwrap();
        assert_eq!(snap.dropped, 2);
        assert_eq!(snap.spans.len(), 3);
    }

    #[test]
    fn lane_counters_fold_in_and_reset() {
        let mut tl = Timeline::armed(16);
        let mut lane = LaneTimeline::armed(tl.epoch_instant());
        lane.note_fast();
        lane.note_fast();
        lane.note_l3_fast();
        lane.note_escalation(0, 7, EscalationCause::L3Remote);
        lane.note_escalation(0, 9, EscalationCause::TaskQueue);
        tl.absorb_lane(&mut lane);
        let snap = tl.snapshot().unwrap();
        assert_eq!(snap.fast_slices, 2);
        assert_eq!(snap.l3_fast, 1);
        assert_eq!(snap.escalated[EscalationCause::L3Remote.index()], 1);
        assert_eq!(snap.escalated[EscalationCause::TaskQueue.index()], 1);
        assert_eq!(snap.slices(), 4);
        assert_eq!(snap.spans.len(), 2, "escalation instants landed in the ring");
        // A second absorb adds nothing: the buffer was drained and reset.
        tl.absorb_lane(&mut lane);
        assert_eq!(tl.snapshot().unwrap().slices(), 4);
    }

    #[test]
    fn summary_json_is_deterministic_and_wall_free() {
        let snap = TimelineSnapshot {
            spans: vec![span("phase_a", 3)],
            dropped: 1,
            crew_spans: vec![span("crew_run", 0)],
            crew_dropped: 9,
            epochs: 4,
            fast_slices: 6,
            l3_fast: 3,
            escalated: {
                let mut e = [0; CAUSES];
                e[EscalationCause::Directory.index()] = 2;
                e
            },
        };
        let j = snap.summary_json();
        assert_eq!(
            j,
            "{\"dropped_spans\": 1, \"epochs\": 4, \"escalated\": {\"atomic\": 0, \
             \"directory\": 2, \"l3-local\": 0, \"l3-remote\": 0, \"noc\": 0, \
             \"task-queue\": 0}, \"escalation_rate\": 0.250000, \"fast\": 6, \
             \"l3_fast\": 3, \"slices\": 8}"
        );
        assert!(!j.contains("crew"), "crew (host) volume never in the summary");
        assert!(!j.contains("_us"), "no wall-clock field in the summary");
    }

    #[test]
    fn crew_log_bounds_each_worker_ring() {
        let log = CrewSpanLog::new(2, Instant::now(), 2);
        for i in 0..4 {
            log.record(0, "crew_run", i, 1);
        }
        log.record(1, "crew_park", 0, 5);
        log.record(99, "crew_run", 0, 1); // out of range: ignored
        let (spans, dropped) = log.drain();
        assert_eq!(dropped, 2);
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| matches!(s.track, Track::Crew(0 | 1))));
        // Worker 0 kept the newest two.
        assert_eq!(spans[0].start_us, 2);
        assert_eq!(spans[1].start_us, 3);
    }

    #[test]
    fn cause_labels_round_trip_indices() {
        for c in EscalationCause::ALL {
            assert_eq!(EscalationCause::from_index(c.index()), c);
        }
        let labels: Vec<&str> = EscalationCause::ALL.iter().map(|c| c.label()).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(labels, sorted, "ALL is in label order");
    }
}
