//! A bounded, structured protocol event log.
//!
//! The machine records protocol events (fetches, probes, evictions,
//! transitions, atomics) into a ring buffer when tracing is armed — either
//! for one watched line (the `COHESION_WATCH` debugging flow) or for
//! everything, capacity-bounded. Unlike print-style tracing, the log is a
//! queryable value: tests assert on event sequences ("the 3a transition
//! probed the owner before clearing the table bit") instead of scraping
//! stderr.

use std::collections::VecDeque;
use std::fmt;

use crate::Cycle;

/// One recorded protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event was processed.
    pub cycle: Cycle,
    /// The cache line involved (line address, i.e. byte address / 32).
    pub line: u32,
    /// A short stable kind tag (`"fetch"`, `"probe"`, `"store"`, ...).
    pub kind: &'static str,
    /// Free-form detail for humans.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>8}] line {:#010x} {:<10} {}",
            self.cycle,
            self.line * 32,
            self.kind,
            self.detail
        )
    }
}

/// What the log records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Filter {
    /// Nothing (disarmed).
    Off,
    /// Only events touching one line.
    Line(u32),
    /// Everything (bounded by capacity).
    All,
}

/// The bounded event log.
///
/// # Capacity behavior
///
/// The log is a ring of `capacity` events (default 4096; [`watch_all`]
/// overrides it, clamped to at least 1). Recording into a full ring
/// evicts the **oldest** event first, so the log always holds the most
/// recent `capacity` events in arrival order. Every eviction increments
/// the [`dropped`] counter, which the machine also publishes as the
/// `tracelog/dropped_events` telemetry counter — a non-zero value means
/// the window was too small for the run being debugged.
///
/// [`watch_all`]: TraceLog::watch_all
/// [`dropped`]: TraceLog::dropped
#[derive(Debug, Clone)]
pub struct TraceLog {
    filter: Filter,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    echo: bool,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog {
            filter: Filter::Off,
            capacity: 4096,
            events: VecDeque::new(),
            dropped: 0,
            echo: false,
        }
    }
}

impl TraceLog {
    /// A disarmed log (records nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the log for one line (line address = byte address / 32).
    /// `echo` additionally prints each event to stderr as it happens.
    pub fn watch_line(&mut self, line: u32, echo: bool) {
        self.filter = Filter::Line(line);
        self.echo = echo;
    }

    /// Arms the log for all events, keeping the most recent `capacity`.
    pub fn watch_all(&mut self, capacity: usize) {
        self.filter = Filter::All;
        self.capacity = capacity.max(1);
    }

    /// Disarms and clears the log.
    pub fn off(&mut self) {
        self.filter = Filter::Off;
        self.events.clear();
        self.dropped = 0;
    }

    /// Whether any recording is armed (callers may skip building details).
    pub fn armed(&self) -> bool {
        self.filter != Filter::Off
    }

    /// Whether events for `line` would be recorded.
    pub fn wants(&self, line: u32) -> bool {
        match self.filter {
            Filter::Off => false,
            Filter::Line(l) => l == line,
            Filter::All => true,
        }
    }

    /// Records an event (if the filter matches).
    pub fn record(&mut self, cycle: Cycle, line: u32, kind: &'static str, detail: String) {
        if !self.wants(line) {
            return;
        }
        let ev = TraceEvent {
            cycle,
            line,
            kind,
            detail,
        };
        if self.echo {
            eprintln!("{ev}");
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events of one kind, oldest first.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// How many events were evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_records_nothing() {
        let mut log = TraceLog::new();
        log.record(1, 42, "fetch", "x".into());
        assert_eq!(log.events().count(), 0);
        assert!(!log.armed());
    }

    #[test]
    fn line_filter_selects() {
        let mut log = TraceLog::new();
        log.watch_line(42, false);
        log.record(1, 42, "fetch", "hit".into());
        log.record(2, 43, "fetch", "other".into());
        log.record(3, 42, "probe", "inv".into());
        assert_eq!(log.events().count(), 2);
        assert_eq!(log.of_kind("probe").count(), 1);
    }

    #[test]
    fn ring_bounds_memory() {
        let mut log = TraceLog::new();
        log.watch_all(3);
        for i in 0..10u64 {
            log.record(i, i as u32, "e", String::new());
        }
        assert_eq!(log.events().count(), 3);
        assert_eq!(log.dropped(), 7);
        assert_eq!(log.events().next().unwrap().cycle, 7, "oldest kept is #7");
    }

    #[test]
    fn ring_drops_oldest_first_and_keeps_arrival_order() {
        let mut log = TraceLog::new();
        log.watch_all(4);
        for i in 0..25u64 {
            log.record(i, i as u32, "e", String::new());
        }
        // The survivors are exactly the newest `capacity` events, still in
        // arrival order; everything older was evicted oldest-first.
        let kept: Vec<Cycle> = log.events().map(|e| e.cycle).collect();
        assert_eq!(kept, vec![21, 22, 23, 24]);
        assert_eq!(log.dropped(), 21);
        // One more record evicts the current oldest survivor, not a newer one.
        log.record(25, 25, "e", String::new());
        let kept: Vec<Cycle> = log.events().map(|e| e.cycle).collect();
        assert_eq!(kept, vec![22, 23, 24, 25]);
        assert_eq!(log.dropped(), 22);
    }

    #[test]
    fn display_is_readable() {
        let ev = TraceEvent {
            cycle: 100,
            line: 2,
            kind: "probe",
            detail: "inv cluster1".into(),
        };
        let s = ev.to_string();
        assert!(s.contains("probe"));
        assert!(s.contains("0x00000040"));
    }

    #[test]
    fn off_clears() {
        let mut log = TraceLog::new();
        log.watch_all(8);
        log.record(1, 1, "e", String::new());
        log.off();
        assert_eq!(log.events().count(), 0);
        assert!(!log.wants(1));
    }
}
