//! Property tests for the simulation engine primitives (on the
//! first-party `cohesion-testkit` harness; ≥ 64 deterministic cases each,
//! seed-replayable via `COHESION_PROP_SEED`).

use cohesion_sim::crew::Crew;
use cohesion_sim::event::EventQueue;
use cohesion_sim::link::{Link, Throttle};
use cohesion_sim::metrics::{Histogram, Registry, HISTOGRAM_BUCKETS};
use cohesion_sim::shard::{BatchEvent, LaneQueues};
use cohesion_sim::stats::TimeWeighted;
use cohesion_sim::slots::SlotReserver;
use cohesion_testkit::prop::{range, sample, vec_of, Runner};

/// Events pop in nondecreasing time order, FIFO within a cycle, and
/// nothing is lost.
#[test]
fn event_queue_orders_and_conserves() {
    Runner::new("event_queue_orders_and_conserves")
        .cases(128)
        .run(&vec_of(range(0u64..1000), 1..200), |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(t, i);
            }
            let mut popped = Vec::new();
            let mut last = (0u64, 0usize);
            let mut first = true;
            while let Some((t, i)) = q.pop() {
                if !first {
                    assert!(t >= last.0, "time order violated");
                    if t == last.0 {
                        assert!(i > last.1, "FIFO within a cycle violated");
                    }
                }
                first = false;
                last = (t, i);
                popped.push(i);
            }
            popped.sort_unstable();
            assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
        });
}

/// The timing wheel pops in exactly the same `(cycle, seq)` order as a
/// reference binary-heap model, under random schedule/pop interleavings
/// that include same-cycle FIFO bursts and far-future overflow events
/// (cycle deltas well past the wheel window, so promotion and window
/// re-basing are exercised).
#[test]
fn event_queue_matches_binary_heap_model() {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // One step of the interleaving: schedule a burst of events at
    // `now + delta` (burst > 1 exercises same-cycle FIFO), or pop a few.
    // Deltas up to 4096 reach far past the 256-cycle wheel window.
    let step = (
        range(0u32..3),                          // 0,1: schedule  2: pop
        sample(&[0u64, 1, 7, 255, 256, 257, 300, 1000, 4096]),
        range(1usize..6),                        // burst / pop count
    );
    Runner::new("event_queue_matches_binary_heap_model")
        .cases(96)
        .run(&vec_of(step, 1..80), |steps| {
            let mut wheel = EventQueue::new();
            let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            for (kind, delta, count) in steps {
                if kind < 2 {
                    let at = wheel.now() + delta;
                    for _ in 0..count {
                        wheel.schedule(at, seq);
                        model.push(Reverse((at, seq)));
                        seq += 1;
                    }
                } else {
                    for _ in 0..count {
                        let got = wheel.pop();
                        let want = model.pop().map(|Reverse((at, s))| (at, s));
                        assert_eq!(got, want, "wheel diverged from heap model");
                    }
                }
                assert_eq!(wheel.len(), model.len());
                assert_eq!(
                    wheel.peek_cycle(),
                    model.peek().map(|Reverse((at, _))| *at)
                );
            }
            // Drain: every remaining event must match the model too.
            while let Some(Reverse((at, s))) = model.pop() {
                assert_eq!(wheel.pop(), Some((at, s)));
            }
            assert_eq!(wheel.pop(), None);
            assert_eq!(wheel.scheduled(), seq);
        });
}

/// `LaneQueues::pop_window` against a reference model: each window's
/// batch holds, for every lane, exactly the pending events with
/// `cycle < horizon` in that lane's `(cycle, insertion)` order, merged
/// by `(cycle, lane, seq)` — including same-cycle bursts across lanes
/// and events landing exactly on the horizon (which must wait for the
/// next window).
#[test]
fn lane_queues_match_per_lane_reference() {
    // One step: schedule a burst into a lane at `now + delta` (deltas
    // straddle the window boundary of 16), or drain one window.
    let step = (
        range(0u32..4),                    // 0..=2: schedule  3: drain
        range(0usize..8),                  // lane (mod lane count)
        sample(&[0u64, 1, 15, 16, 17, 48]), // delta vs window 16
        range(1usize..5),                  // burst size
    );
    Runner::new("lane_queues_match_per_lane_reference")
        .cases(96)
        .run(
            &(range(1usize..9), vec_of(step, 1..60)),
            |(lanes, steps)| {
                const WINDOW: u64 = 16;
                let mut q = LaneQueues::new(lanes);
                // Reference: per-lane sorted-stable pending lists.
                let mut model: Vec<Vec<(u64, u32)>> = vec![Vec::new(); lanes];
                let mut payload = 0u32;
                let mut batch: Vec<BatchEvent<u32>> = Vec::new();
                let mut drains = 0;
                for (kind, lane, delta, burst) in steps {
                    let lane = lane % lanes;
                    if kind < 3 {
                        // Schedule from the lane's own timeline.
                        let at = q.lane_mut(lane).now() + delta;
                        for _ in 0..burst {
                            q.schedule(lane, at, payload);
                            model[lane].push((at, payload));
                            payload += 1;
                        }
                        model[lane].sort_by_key(|&(at, _)| at); // stable: FIFO kept
                    } else if let Some(horizon) = q.pop_window(WINDOW, &mut batch) {
                        drains += 1;
                        let start = model
                            .iter()
                            .filter_map(|l| l.first().map(|&(at, _)| at))
                            .min()
                            .expect("queues non-empty");
                        assert_eq!(horizon, start + WINDOW);
                        // Expected batch: each lane's sub-horizon prefix,
                        // tagged with per-lane seq, merged canonically.
                        let mut want: Vec<(u64, usize, u32, u32)> = Vec::new();
                        for (li, l) in model.iter_mut().enumerate() {
                            let cut = l.partition_point(|&(at, _)| at < horizon);
                            for (seq, (at, p)) in l.drain(..cut).enumerate() {
                                want.push((at, li, seq as u32, p));
                            }
                        }
                        want.sort_by_key(|&(at, li, seq, _)| (at, li, seq));
                        let got: Vec<(u64, usize, u32, u32)> = batch
                            .iter()
                            .map(|e| (e.cycle, e.lane as usize, e.seq, e.payload))
                            .collect();
                        assert_eq!(got, want, "window {drains} diverged from model");
                    } else {
                        assert!(model.iter().all(|l| l.is_empty()));
                    }
                }
                assert_eq!(
                    q.len() as usize,
                    model.iter().map(|l| l.len()).sum::<usize>(),
                    "conservation after {drains} drains"
                );
            },
        );
}

/// The sharded two-phase window discipline in miniature: a toy machine
/// with per-lane cores whose events either mutate lane-local state
/// (phase A, parallel over lanes) or escalate to a shared digest applied
/// in canonical batch order (phase B, serial). Running it single-threaded
/// and on a worker crew must leave byte-identical final state — lane
/// digests, shared digest, queue stats, and merged metrics JSON. Initial
/// events collide on the same cycle across lanes, and re-schedules land
/// exactly on (or just past) the lookahead horizon.
#[test]
fn crewed_windows_match_single_threaded_windows() {
    Runner::new("crewed_windows_match_single_threaded_windows")
        .cases(64)
        .run(
            &(
                range(1usize..9),            // lanes
                range(1usize..4),            // cores per lane
                range(1u64..24),             // steps per core
                vec_of(range(0u64..4), 4..24), // re-schedule jitter (0 = boundary)
            ),
            |(lanes, cpl, steps, jitter)| {
                let serial = toy_sharded_run(lanes, cpl, steps, &jitter, 1);
                for threads in [2, lanes.max(2)] {
                    let crewed = toy_sharded_run(lanes, cpl, steps, &jitter, threads);
                    assert_eq!(
                        serial, crewed,
                        "{lanes} lanes x {cpl} cores, {threads} threads diverged"
                    );
                }
            },
        );
}

fn toy_mix(d: u64, cycle: u64, x: u64) -> u64 {
    (d ^ cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ x)
        .wrapping_mul(0xFF51_AFD7_ED55_8CCD)
        .rotate_left(13)
}

/// Runs the toy model to completion; the return value is the complete
/// observable state. `threads` must not affect it.
fn toy_sharded_run(
    lanes: usize,
    cpl: usize,
    steps: u64,
    jitter: &[u64],
    threads: usize,
) -> (Vec<u64>, u64, u64, u64, String) {
    const WINDOW: u64 = 16;
    struct LaneJob<'a> {
        queue: &'a mut EventQueue<u32>,
        digest: &'a mut u64,
        /// Per-core completed-step counters (host-thread-independent).
        done: &'a mut [u64],
        metrics: &'a mut Registry,
        /// This lane's window events: `(batch_idx, cycle, core_payload)`.
        events: Vec<(usize, u64, u32)>,
        /// Escalations for phase B, same tuple shape.
        out: Vec<(usize, u64, u32)>,
    }
    /// An event escalates (touches the shared digest) 1 time in 4.
    fn is_global(cycle: u64, payload: u32) -> bool {
        toy_mix(0, cycle, payload as u64) % 4 == 0
    }

    let mut q = LaneQueues::new(lanes);
    for lane in 0..lanes {
        for c in 0..cpl {
            // Same-cycle collisions across lanes by construction.
            q.schedule(lane, (c as u64) % 3, (lane * cpl + c) as u32);
        }
    }
    let mut lane_digests = vec![0u64; lanes];
    let mut done = vec![0u64; lanes * cpl];
    let mut registries: Vec<Registry> = (0..lanes).map(|_| Registry::armed(64)).collect();
    let mut shared = 0u64;
    let crew = (threads > 1).then(|| Crew::new(threads - 1));
    let mut batch: Vec<BatchEvent<u32>> = Vec::new();
    while q.pop_window(WINDOW, &mut batch).is_some() {
        let mut per_lane: Vec<Vec<(usize, u64, u32)>> = vec![Vec::new(); lanes];
        for (bi, ev) in batch.iter().enumerate() {
            per_lane[ev.lane as usize].push((bi, ev.cycle, ev.payload));
        }
        // Phase A: lanes process their own events in canonical order,
        // touching only lane-local state; global events escalate with
        // nothing mutated.
        let mut jobs: Vec<LaneJob<'_>> = q
            .as_mut_slice()
            .iter_mut()
            .zip(lane_digests.iter_mut())
            .zip(done.chunks_mut(cpl))
            .zip(registries.iter_mut())
            .zip(per_lane)
            .map(|((((queue, digest), done), metrics), events)| LaneJob {
                queue,
                digest,
                done,
                metrics,
                events,
                out: Vec::new(),
            })
            .collect();
        let run_lane = |j: &mut LaneJob<'_>| {
            for i in 0..j.events.len() {
                let (bi, cycle, payload) = j.events[i];
                if is_global(cycle, payload) {
                    j.out.push((bi, cycle, payload));
                    continue;
                }
                *j.digest = toy_mix(*j.digest, cycle, payload as u64);
                j.metrics.record_latency("toy/local", cycle % 97);
                let core = payload as usize % cpl;
                j.done[core] += 1;
                if j.done[core] < steps {
                    let jit = jitter[(j.done[core] as usize + payload as usize) % jitter.len()];
                    // On or just past the lookahead horizon.
                    j.queue.schedule(cycle + WINDOW + jit, payload);
                }
            }
        };
        match &crew {
            Some(crew) => {
                let mut closures: Vec<_> = jobs
                    .iter_mut()
                    .map(|j| move || run_lane(j))
                    .collect();
                let mut refs: Vec<&mut (dyn FnMut() + Send)> = closures
                    .iter_mut()
                    .map(|c| c as &mut (dyn FnMut() + Send))
                    .collect();
                crew.run(&mut refs);
            }
            None => {
                for j in jobs.iter_mut() {
                    run_lane(j);
                }
            }
        }
        // Phase B: escalations apply to the shared digest in canonical
        // batch order, and re-schedule into their own lane.
        let mut serial: Vec<(usize, usize, u64, u32)> = Vec::new();
        for (lane, j) in jobs.iter_mut().enumerate() {
            for (bi, cycle, payload) in j.out.drain(..) {
                serial.push((bi, lane, cycle, payload));
            }
        }
        drop(jobs);
        serial.sort_unstable_by_key(|&(bi, ..)| bi);
        for (_bi, lane, cycle, payload) in serial {
            shared = toy_mix(shared, cycle, (payload as u64) << 32 | lane as u64);
            let core = payload as usize % cpl;
            let slot = lane * cpl + core;
            done[slot] += 1;
            if done[slot] < steps {
                let jit = jitter[(done[slot] as usize + payload as usize) % jitter.len()];
                q.schedule(lane, cycle + WINDOW + jit, payload);
            }
        }
    }
    let merged_metrics = {
        let mut all = Registry::armed(64);
        for r in &registries {
            all.merge_from(r);
        }
        let mut snap = all.snapshot();
        snap.finalize();
        snap.to_json()
    };
    (
        lane_digests,
        shared,
        q.scheduled(),
        q.max_pending() as u64,
        merged_metrics,
    )
}
#[test]
fn slot_reserver_respects_capacity() {
    Runner::new("slot_reserver_respects_capacity")
        .cases(128)
        .run(
            &(
                vec_of(range(0u64..500), 1..300),
                range(0u32..4),
                range(1u32..4),
            ),
            |(requests, window_log2, capacity)| {
                let mut r = SlotReserver::new(window_log2, capacity);
                let mut grants: Vec<u64> = requests.iter().map(|&t| r.reserve(t)).collect();
                for (&req, &grant) in requests.iter().zip(&grants) {
                    assert!(grant >= req, "grant may not precede the request");
                }
                grants.sort_unstable();
                // Count grants per window.
                let mut counts = std::collections::HashMap::new();
                for g in grants {
                    *counts.entry(g >> window_log2).or_insert(0u32) += 1;
                }
                for (&w, &n) in &counts {
                    assert!(n <= capacity, "window {w} over-booked: {n} > {capacity}");
                }
            },
        );
}

/// A link delivers every message no earlier than `now + latency` and
/// never two messages within one acceptance interval.
#[test]
fn link_respects_latency_and_bandwidth() {
    Runner::new("link_respects_latency_and_bandwidth")
        .cases(128)
        .run(
            &(
                vec_of(range(0u64..300), 1..100),
                range(0u64..16),
                sample(&[1u64, 2, 4]),
            ),
            |(sends, latency, interval)| {
                let mut l = Link::new(latency, interval);
                let mut departures: Vec<u64> = sends.iter().map(|&t| l.send(t) - latency).collect();
                for (&t, &d) in sends.iter().zip(&departures) {
                    assert!(d >= t);
                }
                departures.sort_unstable();
                let mut counts = std::collections::HashMap::new();
                for d in departures {
                    *counts.entry(d / interval).or_insert(0u32) += 1;
                }
                for &n in counts.values() {
                    assert!(n <= 1, "two departures within one interval");
                }
                assert_eq!(l.sent(), sends.len() as u64);
            },
        );
}

/// A throttle grants at most `width` accesses per cycle.
#[test]
fn throttle_respects_width() {
    Runner::new("throttle_respects_width")
        .cases(128)
        .run(
            &(vec_of(range(0u64..200), 1..200), range(1u32..4)),
            |(grants, width)| {
                let mut t = Throttle::new(width);
                let mut times: Vec<u64> = grants.iter().map(|&g| t.grant(g)).collect();
                times.sort_unstable();
                let mut counts = std::collections::HashMap::new();
                for g in times {
                    *counts.entry(g).or_insert(0u32) += 1;
                }
                for &n in counts.values() {
                    assert!(n <= width);
                }
            },
        );
}

/// `TimeWeighted::set` clamps out-of-order update times to the latest
/// update seen, so any update sequence integrates identically to the same
/// sequence with times pre-clamped to their running maximum — and both
/// match a directly computed level·dt integral.
#[test]
fn time_weighted_clamps_out_of_order() {
    Runner::new("time_weighted_clamps_out_of_order")
        .cases(128)
        .run(
            &(
                vec_of((range(0u64..1000), range(0u64..100)), 1..100),
                range(0u64..2000),
            ),
            |(updates, end)| {
                let mut raw = TimeWeighted::new();
                let mut clamped = TimeWeighted::new();
                let mut clock = 0u64;
                let mut integral = 0u128;
                let mut level = 0u64;
                let mut peak = 0u64;
                for &(t, v) in &updates {
                    raw.set(t, v);
                    let t = t.max(clock);
                    clamped.set(t, v);
                    integral += level as u128 * (t - clock) as u128;
                    clock = t;
                    level = v;
                    peak = peak.max(v);
                }
                assert_eq!(raw.level(), clamped.level());
                assert_eq!(raw.max(), clamped.max());
                assert_eq!(raw.max(), peak);
                assert_eq!(raw.average(end).to_bits(), clamped.average(end).to_bits());
                // Independent oracle: finish the integral at `end` and
                // compare exactly (both sides do the same u128 → f64 math).
                integral += level as u128 * end.saturating_sub(clock) as u128;
                let oracle = if end == 0 { 0.0 } else { integral as f64 / end as f64 };
                assert_eq!(raw.average(end).to_bits(), oracle.to_bits());
            },
        );
}

/// Every value lands in the bucket whose bounds contain it, and the
/// log2 buckets tile the `u64` range without gaps or overlap.
#[test]
fn histogram_buckets_tile_and_contain() {
    // Deterministic tiling check: bucket 0 is {0}; bucket i starts one
    // past where bucket i-1 ends; the last bucket reaches u64::MAX.
    assert_eq!(Histogram::bucket_bounds(0), (0, 0));
    for i in 1..HISTOGRAM_BUCKETS {
        let (lo, hi) = Histogram::bucket_bounds(i);
        let (_, prev_hi) = Histogram::bucket_bounds(i - 1);
        assert_eq!(lo, prev_hi + 1, "gap or overlap entering bucket {i}");
        assert!(hi >= lo);
    }
    assert_eq!(Histogram::bucket_bounds(HISTOGRAM_BUCKETS - 1).1, u64::MAX);

    Runner::new("histogram_buckets_tile_and_contain")
        .cases(128)
        .run(
            &vec_of((range(0u64..16), range(0u32..61)), 1..100),
            |samples| {
                for &(m, s) in &samples {
                    let v = m << s; // spans the full magnitude range
                    let b = Histogram::bucket_of(v);
                    let (lo, hi) = Histogram::bucket_bounds(b);
                    assert!(
                        lo <= v && v <= hi,
                        "value {v} outside bucket {b} bounds [{lo}, {hi}]"
                    );
                }
            },
        );
}

/// Histogram summary statistics against an exact oracle: `count`, `sum`,
/// `min`, `max`, and `mean` are exact; percentile estimates are clamped
/// to `[min, max]`, monotone in `p`, and `percentile(1.0)` is exactly
/// `max`.
#[test]
fn histogram_percentiles_are_monotone_and_bounded() {
    Runner::new("histogram_percentiles_are_monotone_and_bounded")
        .cases(128)
        .run(
            &vec_of((range(0u64..16), range(0u32..61)), 1..128),
            |samples| {
                let values: Vec<u64> = samples.iter().map(|&(m, s)| m << s).collect();
                let mut h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                let (min, max) = (
                    *values.iter().min().expect("non-empty"),
                    *values.iter().max().expect("non-empty"),
                );
                assert_eq!(h.count(), values.len() as u64);
                assert_eq!(
                    h.sum(),
                    values.iter().fold(0u64, |a, &v| a.saturating_add(v)),
                    "sum saturates rather than overflowing"
                );
                assert_eq!(h.min(), min);
                assert_eq!(h.max(), max);
                let mean = h.mean();
                assert!(min as f64 <= mean && mean <= max as f64);

                let mut prev = f64::NEG_INFINITY;
                for i in 0..=20 {
                    let p = i as f64 / 20.0;
                    let est = h.percentile(p);
                    assert!(
                        min as f64 <= est && est <= max as f64,
                        "p{p} estimate {est} outside [{min}, {max}]"
                    );
                    assert!(est >= prev, "percentile not monotone at p={p}");
                    prev = est;
                }
                assert_eq!(h.percentile(1.0), max as f64);
            },
        );
}

/// Lane-owned L3 servicing, driven as a property over the home
/// function: across three `AddressMap` shapes (lanes own 1, 2, and 4
/// bank slots), random trace seeds, two kernels, and two coherence
/// points,
///
/// 1. **Servicing is exact.** With the fast path on, running the two
///    cluster lanes on worker threads (`shards = 2`) is byte-identical
///    to the same engine inline (`shards = 1`) — every field of the
///    report and the full metrics snapshot JSON. Phase-A-serviced
///    misses touch only lane-owned banks/slices, so parallel execution
///    cannot reorder anything observable.
/// 2. **Escalate-and-replay agrees on architectural totals.** With the
///    fast path off (`lane_owned_l3 = false`, the pre-change
///    escalate-everything engine) the workload must still execute the
///    same program: same barrier phases, same task count, same trace
///    operations, and a passing self-check.
///
/// Deliberately *not* asserted across the on/off engines: cycle counts,
/// latency distributions, and state-dependent event counts (messages,
/// cache hits). Owned-bank port/directory bookings interleave with the
/// serial spine in a different global order than escalate-everything,
/// so arbitration timing drifts by a handful of cycles, and a shifted
/// eviction can butterfly into e.g. one more upgrade message — the same
/// accepted drift the sharded engine introduced against the pure
/// event-wheel machine (see `MachineConfig::lane_owned_l3`).
#[test]
fn lane_owned_l3_matches_escalate_and_replay() {
    use cohesion::config::{DesignPoint, MachineConfig};
    use cohesion::report::RunReport;
    use cohesion::run::run_workload;
    use cohesion_kernels::{kernel_by_name_seeded, Scale};

    // Home-function shapes: (l3_banks, dram_channels). The 16-core
    // machine has 2 cluster lanes, so lanes own 1 / 2 / 4 bank slots.
    const SHAPES: [(u32, u32); 3] = [(2, 1), (4, 2), (8, 4)];

    Runner::new("lane_owned_l3_matches_escalate_and_replay")
        .cases(64)
        .run(
            &(
                range(0usize..3),            // AddressMap shape
                sample(&["gjk", "kmeans"]),  // fast kernels, distinct access mixes
                range(0u64..1_000_000),      // trace seed (0 = paper inputs)
                range(0u32..2),              // design point: Cohesion / SWcc
            ),
            |(shape, kernel, seed, point)| {
                let (banks, channels) = SHAPES[shape];
                let dp = if point == 0 {
                    DesignPoint::cohesion(1024, 128)
                } else {
                    DesignPoint::swcc()
                };
                let run = |lane_owned: bool, shards: u32| -> RunReport {
                    let mut cfg = MachineConfig::scaled(16, dp);
                    cfg.l3_banks = banks;
                    cfg.dram_channels = channels;
                    cfg.shards = shards;
                    cfg.lane_owned_l3 = lane_owned;
                    cfg.metrics = lane_owned;
                    let mut wl = kernel_by_name_seeded(kernel, Scale::Tiny, seed);
                    run_workload(&cfg, wl.as_mut()).unwrap_or_else(|e| {
                        panic!("{kernel} seed={seed} banks={banks}: {e}")
                    })
                };
                let ctx = format!("{kernel} seed={seed} banks={banks}x{channels}");

                // 1. Fast path on: crewed lanes == inline engine, exactly.
                let inline = run(true, 1);
                let crewed = run(true, 2);
                assert_eq!(inline.cycles, crewed.cycles, "{ctx}: cycles diverged");
                assert_eq!(inline.phases, crewed.phases, "{ctx}: phases diverged");
                assert_eq!(inline.tasks, crewed.tasks, "{ctx}: tasks diverged");
                assert_eq!(inline.ops, crewed.ops, "{ctx}: ops diverged");
                assert_eq!(inline.messages, crewed.messages, "{ctx}: messages diverged");
                assert_eq!(
                    inline.instr_stats, crewed.instr_stats,
                    "{ctx}: coherence-instruction stats diverged"
                );
                assert_eq!(
                    inline.transitions, crewed.transitions,
                    "{ctx}: domain transitions diverged"
                );
                assert_eq!(inline.dram, crewed.dram, "{ctx}: DRAM diverged");
                assert_eq!(inline.l2, crewed.l2, "{ctx}: L2 stats diverged");
                assert_eq!(inline.l3, crewed.l3, "{ctx}: L3 stats diverged");
                assert_eq!(inline.noc, crewed.noc, "{ctx}: NoC stats diverged");
                assert_eq!(
                    inline.dir_insertions, crewed.dir_insertions,
                    "{ctx}: directory insertions diverged"
                );
                assert_eq!(
                    inline.dir_evictions, crewed.dir_evictions,
                    "{ctx}: directory evictions diverged"
                );
                assert_eq!(inline.races, crewed.races, "{ctx}: races diverged");
                let ja = inline.metrics.as_ref().expect("metrics armed").to_json();
                let jb = crewed.metrics.as_ref().expect("metrics armed").to_json();
                assert_eq!(ja, jb, "{ctx}: metrics snapshots diverged");

                // 2. Fast path off: the escalate-everything engine runs
                // the same program (its self-check passed inside `run`).
                let replay = run(false, 2);
                assert_eq!(inline.phases, replay.phases, "{ctx}: replay phases diverged");
                assert_eq!(inline.tasks, replay.tasks, "{ctx}: replay tasks diverged");
                assert_eq!(inline.ops, replay.ops, "{ctx}: replay ops diverged");
            },
        );
}
