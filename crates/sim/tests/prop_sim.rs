//! Property tests for the simulation engine primitives.

use cohesion_sim::event::EventQueue;
use cohesion_sim::link::{Link, Throttle};
use cohesion_sim::slots::SlotReserver;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events pop in nondecreasing time order, FIFO within a cycle, and
    /// nothing is lost.
    #[test]
    fn event_queue_orders_and_conserves(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut popped = Vec::new();
        let mut last = (0u64, 0usize);
        let mut first = true;
        while let Some((t, i)) = q.pop() {
            if !first {
                prop_assert!(t >= last.0, "time order violated");
                if t == last.0 {
                    prop_assert!(i > last.1, "FIFO within a cycle violated");
                }
            }
            first = false;
            last = (t, i);
            popped.push(i);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    /// A reserver never grants more than `capacity` uses whose grant times
    /// fall in any single window, for arbitrary (including out-of-order)
    /// request times.
    #[test]
    fn slot_reserver_respects_capacity(
        requests in proptest::collection::vec(0u64..500, 1..300),
        window_log2 in 0u32..4,
        capacity in 1u32..4,
    ) {
        let mut r = SlotReserver::new(window_log2, capacity);
        let mut grants: Vec<u64> = requests.iter().map(|&t| r.reserve(t)).collect();
        for (&req, &grant) in requests.iter().zip(&grants) {
            prop_assert!(grant >= req, "grant may not precede the request");
        }
        grants.sort_unstable();
        // Count grants per window.
        let mut counts = std::collections::HashMap::new();
        for g in grants {
            *counts.entry(g >> window_log2).or_insert(0u32) += 1;
        }
        for (&w, &n) in &counts {
            prop_assert!(n <= capacity, "window {w} over-booked: {n} > {capacity}");
        }
    }

    /// A link delivers every message no earlier than `now + latency` and
    /// never two messages within one acceptance interval.
    #[test]
    fn link_respects_latency_and_bandwidth(
        sends in proptest::collection::vec(0u64..300, 1..100),
        latency in 0u64..16,
        interval in prop_oneof![Just(1u64), Just(2), Just(4)],
    ) {
        let mut l = Link::new(latency, interval);
        let mut departures: Vec<u64> = sends
            .iter()
            .map(|&t| l.send(t) - latency)
            .collect();
        for (&t, &d) in sends.iter().zip(&departures) {
            prop_assert!(d >= t);
        }
        departures.sort_unstable();
        let mut counts = std::collections::HashMap::new();
        for d in departures {
            *counts.entry(d / interval).or_insert(0u32) += 1;
        }
        for &n in counts.values() {
            prop_assert!(n <= 1, "two departures within one interval");
        }
        prop_assert_eq!(l.sent(), sends.len() as u64);
    }

    /// A throttle grants at most `width` accesses per cycle.
    #[test]
    fn throttle_respects_width(
        grants in proptest::collection::vec(0u64..200, 1..200),
        width in 1u32..4,
    ) {
        let mut t = Throttle::new(width);
        let mut times: Vec<u64> = grants.iter().map(|&g| t.grant(g)).collect();
        times.sort_unstable();
        let mut counts = std::collections::HashMap::new();
        for g in times {
            *counts.entry(g).or_insert(0u32) += 1;
        }
        for &n in counts.values() {
            prop_assert!(n <= width);
        }
    }
}
