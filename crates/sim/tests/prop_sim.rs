//! Property tests for the simulation engine primitives (on the
//! first-party `cohesion-testkit` harness; ≥ 64 deterministic cases each,
//! seed-replayable via `COHESION_PROP_SEED`).

use cohesion_sim::event::EventQueue;
use cohesion_sim::link::{Link, Throttle};
use cohesion_sim::slots::SlotReserver;
use cohesion_testkit::prop::{range, sample, vec_of, Runner};

/// Events pop in nondecreasing time order, FIFO within a cycle, and
/// nothing is lost.
#[test]
fn event_queue_orders_and_conserves() {
    Runner::new("event_queue_orders_and_conserves")
        .cases(128)
        .run(&vec_of(range(0u64..1000), 1..200), |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(t, i);
            }
            let mut popped = Vec::new();
            let mut last = (0u64, 0usize);
            let mut first = true;
            while let Some((t, i)) = q.pop() {
                if !first {
                    assert!(t >= last.0, "time order violated");
                    if t == last.0 {
                        assert!(i > last.1, "FIFO within a cycle violated");
                    }
                }
                first = false;
                last = (t, i);
                popped.push(i);
            }
            popped.sort_unstable();
            assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
        });
}

/// A reserver never grants more than `capacity` uses whose grant times
/// fall in any single window, for arbitrary (including out-of-order)
/// request times.
#[test]
fn slot_reserver_respects_capacity() {
    Runner::new("slot_reserver_respects_capacity")
        .cases(128)
        .run(
            &(
                vec_of(range(0u64..500), 1..300),
                range(0u32..4),
                range(1u32..4),
            ),
            |(requests, window_log2, capacity)| {
                let mut r = SlotReserver::new(window_log2, capacity);
                let mut grants: Vec<u64> = requests.iter().map(|&t| r.reserve(t)).collect();
                for (&req, &grant) in requests.iter().zip(&grants) {
                    assert!(grant >= req, "grant may not precede the request");
                }
                grants.sort_unstable();
                // Count grants per window.
                let mut counts = std::collections::HashMap::new();
                for g in grants {
                    *counts.entry(g >> window_log2).or_insert(0u32) += 1;
                }
                for (&w, &n) in &counts {
                    assert!(n <= capacity, "window {w} over-booked: {n} > {capacity}");
                }
            },
        );
}

/// A link delivers every message no earlier than `now + latency` and
/// never two messages within one acceptance interval.
#[test]
fn link_respects_latency_and_bandwidth() {
    Runner::new("link_respects_latency_and_bandwidth")
        .cases(128)
        .run(
            &(
                vec_of(range(0u64..300), 1..100),
                range(0u64..16),
                sample(&[1u64, 2, 4]),
            ),
            |(sends, latency, interval)| {
                let mut l = Link::new(latency, interval);
                let mut departures: Vec<u64> = sends.iter().map(|&t| l.send(t) - latency).collect();
                for (&t, &d) in sends.iter().zip(&departures) {
                    assert!(d >= t);
                }
                departures.sort_unstable();
                let mut counts = std::collections::HashMap::new();
                for d in departures {
                    *counts.entry(d / interval).or_insert(0u32) += 1;
                }
                for &n in counts.values() {
                    assert!(n <= 1, "two departures within one interval");
                }
                assert_eq!(l.sent(), sends.len() as u64);
            },
        );
}

/// A throttle grants at most `width` accesses per cycle.
#[test]
fn throttle_respects_width() {
    Runner::new("throttle_respects_width")
        .cases(128)
        .run(
            &(vec_of(range(0u64..200), 1..200), range(1u32..4)),
            |(grants, width)| {
                let mut t = Throttle::new(width);
                let mut times: Vec<u64> = grants.iter().map(|&g| t.grant(g)).collect();
                times.sort_unstable();
                let mut counts = std::collections::HashMap::new();
                for g in times {
                    *counts.entry(g).or_insert(0u32) += 1;
                }
                for &n in counts.values() {
                    assert!(n <= width);
                }
            },
        );
}
