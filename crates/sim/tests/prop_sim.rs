//! Property tests for the simulation engine primitives (on the
//! first-party `cohesion-testkit` harness; ≥ 64 deterministic cases each,
//! seed-replayable via `COHESION_PROP_SEED`).

use cohesion_sim::event::EventQueue;
use cohesion_sim::link::{Link, Throttle};
use cohesion_sim::metrics::{Histogram, HISTOGRAM_BUCKETS};
use cohesion_sim::stats::TimeWeighted;
use cohesion_sim::slots::SlotReserver;
use cohesion_testkit::prop::{range, sample, vec_of, Runner};

/// Events pop in nondecreasing time order, FIFO within a cycle, and
/// nothing is lost.
#[test]
fn event_queue_orders_and_conserves() {
    Runner::new("event_queue_orders_and_conserves")
        .cases(128)
        .run(&vec_of(range(0u64..1000), 1..200), |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(t, i);
            }
            let mut popped = Vec::new();
            let mut last = (0u64, 0usize);
            let mut first = true;
            while let Some((t, i)) = q.pop() {
                if !first {
                    assert!(t >= last.0, "time order violated");
                    if t == last.0 {
                        assert!(i > last.1, "FIFO within a cycle violated");
                    }
                }
                first = false;
                last = (t, i);
                popped.push(i);
            }
            popped.sort_unstable();
            assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
        });
}

/// The timing wheel pops in exactly the same `(cycle, seq)` order as a
/// reference binary-heap model, under random schedule/pop interleavings
/// that include same-cycle FIFO bursts and far-future overflow events
/// (cycle deltas well past the wheel window, so promotion and window
/// re-basing are exercised).
#[test]
fn event_queue_matches_binary_heap_model() {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // One step of the interleaving: schedule a burst of events at
    // `now + delta` (burst > 1 exercises same-cycle FIFO), or pop a few.
    // Deltas up to 4096 reach far past the 256-cycle wheel window.
    let step = (
        range(0u32..3),                          // 0,1: schedule  2: pop
        sample(&[0u64, 1, 7, 255, 256, 257, 300, 1000, 4096]),
        range(1usize..6),                        // burst / pop count
    );
    Runner::new("event_queue_matches_binary_heap_model")
        .cases(96)
        .run(&vec_of(step, 1..80), |steps| {
            let mut wheel = EventQueue::new();
            let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            for (kind, delta, count) in steps {
                if kind < 2 {
                    let at = wheel.now() + delta;
                    for _ in 0..count {
                        wheel.schedule(at, seq);
                        model.push(Reverse((at, seq)));
                        seq += 1;
                    }
                } else {
                    for _ in 0..count {
                        let got = wheel.pop();
                        let want = model.pop().map(|Reverse((at, s))| (at, s));
                        assert_eq!(got, want, "wheel diverged from heap model");
                    }
                }
                assert_eq!(wheel.len(), model.len());
                assert_eq!(
                    wheel.peek_cycle(),
                    model.peek().map(|Reverse((at, _))| *at)
                );
            }
            // Drain: every remaining event must match the model too.
            while let Some(Reverse((at, s))) = model.pop() {
                assert_eq!(wheel.pop(), Some((at, s)));
            }
            assert_eq!(wheel.pop(), None);
            assert_eq!(wheel.scheduled(), seq);
        });
}

/// A reserver never grants more than `capacity` uses whose grant times
/// fall in any single window, for arbitrary (including out-of-order)
/// request times.
#[test]
fn slot_reserver_respects_capacity() {
    Runner::new("slot_reserver_respects_capacity")
        .cases(128)
        .run(
            &(
                vec_of(range(0u64..500), 1..300),
                range(0u32..4),
                range(1u32..4),
            ),
            |(requests, window_log2, capacity)| {
                let mut r = SlotReserver::new(window_log2, capacity);
                let mut grants: Vec<u64> = requests.iter().map(|&t| r.reserve(t)).collect();
                for (&req, &grant) in requests.iter().zip(&grants) {
                    assert!(grant >= req, "grant may not precede the request");
                }
                grants.sort_unstable();
                // Count grants per window.
                let mut counts = std::collections::HashMap::new();
                for g in grants {
                    *counts.entry(g >> window_log2).or_insert(0u32) += 1;
                }
                for (&w, &n) in &counts {
                    assert!(n <= capacity, "window {w} over-booked: {n} > {capacity}");
                }
            },
        );
}

/// A link delivers every message no earlier than `now + latency` and
/// never two messages within one acceptance interval.
#[test]
fn link_respects_latency_and_bandwidth() {
    Runner::new("link_respects_latency_and_bandwidth")
        .cases(128)
        .run(
            &(
                vec_of(range(0u64..300), 1..100),
                range(0u64..16),
                sample(&[1u64, 2, 4]),
            ),
            |(sends, latency, interval)| {
                let mut l = Link::new(latency, interval);
                let mut departures: Vec<u64> = sends.iter().map(|&t| l.send(t) - latency).collect();
                for (&t, &d) in sends.iter().zip(&departures) {
                    assert!(d >= t);
                }
                departures.sort_unstable();
                let mut counts = std::collections::HashMap::new();
                for d in departures {
                    *counts.entry(d / interval).or_insert(0u32) += 1;
                }
                for &n in counts.values() {
                    assert!(n <= 1, "two departures within one interval");
                }
                assert_eq!(l.sent(), sends.len() as u64);
            },
        );
}

/// A throttle grants at most `width` accesses per cycle.
#[test]
fn throttle_respects_width() {
    Runner::new("throttle_respects_width")
        .cases(128)
        .run(
            &(vec_of(range(0u64..200), 1..200), range(1u32..4)),
            |(grants, width)| {
                let mut t = Throttle::new(width);
                let mut times: Vec<u64> = grants.iter().map(|&g| t.grant(g)).collect();
                times.sort_unstable();
                let mut counts = std::collections::HashMap::new();
                for g in times {
                    *counts.entry(g).or_insert(0u32) += 1;
                }
                for &n in counts.values() {
                    assert!(n <= width);
                }
            },
        );
}

/// `TimeWeighted::set` clamps out-of-order update times to the latest
/// update seen, so any update sequence integrates identically to the same
/// sequence with times pre-clamped to their running maximum — and both
/// match a directly computed level·dt integral.
#[test]
fn time_weighted_clamps_out_of_order() {
    Runner::new("time_weighted_clamps_out_of_order")
        .cases(128)
        .run(
            &(
                vec_of((range(0u64..1000), range(0u64..100)), 1..100),
                range(0u64..2000),
            ),
            |(updates, end)| {
                let mut raw = TimeWeighted::new();
                let mut clamped = TimeWeighted::new();
                let mut clock = 0u64;
                let mut integral = 0u128;
                let mut level = 0u64;
                let mut peak = 0u64;
                for &(t, v) in &updates {
                    raw.set(t, v);
                    let t = t.max(clock);
                    clamped.set(t, v);
                    integral += level as u128 * (t - clock) as u128;
                    clock = t;
                    level = v;
                    peak = peak.max(v);
                }
                assert_eq!(raw.level(), clamped.level());
                assert_eq!(raw.max(), clamped.max());
                assert_eq!(raw.max(), peak);
                assert_eq!(raw.average(end).to_bits(), clamped.average(end).to_bits());
                // Independent oracle: finish the integral at `end` and
                // compare exactly (both sides do the same u128 → f64 math).
                integral += level as u128 * end.saturating_sub(clock) as u128;
                let oracle = if end == 0 { 0.0 } else { integral as f64 / end as f64 };
                assert_eq!(raw.average(end).to_bits(), oracle.to_bits());
            },
        );
}

/// Every value lands in the bucket whose bounds contain it, and the
/// log2 buckets tile the `u64` range without gaps or overlap.
#[test]
fn histogram_buckets_tile_and_contain() {
    // Deterministic tiling check: bucket 0 is {0}; bucket i starts one
    // past where bucket i-1 ends; the last bucket reaches u64::MAX.
    assert_eq!(Histogram::bucket_bounds(0), (0, 0));
    for i in 1..HISTOGRAM_BUCKETS {
        let (lo, hi) = Histogram::bucket_bounds(i);
        let (_, prev_hi) = Histogram::bucket_bounds(i - 1);
        assert_eq!(lo, prev_hi + 1, "gap or overlap entering bucket {i}");
        assert!(hi >= lo);
    }
    assert_eq!(Histogram::bucket_bounds(HISTOGRAM_BUCKETS - 1).1, u64::MAX);

    Runner::new("histogram_buckets_tile_and_contain")
        .cases(128)
        .run(
            &vec_of((range(0u64..16), range(0u32..61)), 1..100),
            |samples| {
                for &(m, s) in &samples {
                    let v = m << s; // spans the full magnitude range
                    let b = Histogram::bucket_of(v);
                    let (lo, hi) = Histogram::bucket_bounds(b);
                    assert!(
                        lo <= v && v <= hi,
                        "value {v} outside bucket {b} bounds [{lo}, {hi}]"
                    );
                }
            },
        );
}

/// Histogram summary statistics against an exact oracle: `count`, `sum`,
/// `min`, `max`, and `mean` are exact; percentile estimates are clamped
/// to `[min, max]`, monotone in `p`, and `percentile(1.0)` is exactly
/// `max`.
#[test]
fn histogram_percentiles_are_monotone_and_bounded() {
    Runner::new("histogram_percentiles_are_monotone_and_bounded")
        .cases(128)
        .run(
            &vec_of((range(0u64..16), range(0u32..61)), 1..128),
            |samples| {
                let values: Vec<u64> = samples.iter().map(|&(m, s)| m << s).collect();
                let mut h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                let (min, max) = (
                    *values.iter().min().expect("non-empty"),
                    *values.iter().max().expect("non-empty"),
                );
                assert_eq!(h.count(), values.len() as u64);
                assert_eq!(
                    h.sum(),
                    values.iter().fold(0u64, |a, &v| a.saturating_add(v)),
                    "sum saturates rather than overflowing"
                );
                assert_eq!(h.min(), min);
                assert_eq!(h.max(), max);
                let mean = h.mean();
                assert!(min as f64 <= mean && mean <= max as f64);

                let mut prev = f64::NEG_INFINITY;
                for i in 0..=20 {
                    let p = i as f64 / 20.0;
                    let est = h.percentile(p);
                    assert!(
                        min as f64 <= est && est <= max as f64,
                        "p{p} estimate {est} outside [{min}, {max}]"
                    );
                    assert!(est >= prev, "percentile not monotone at p={p}");
                    prev = est;
                }
                assert_eq!(h.percentile(1.0), max as f64);
            },
        );
}
