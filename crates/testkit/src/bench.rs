//! A wall-clock micro-benchmark runner for `harness = false` bench
//! targets (the workspace's `criterion` replacement).
//!
//! Each benchmark calibrates an iteration batch during a short warmup,
//! then times a fixed number of samples (batches) and reports the median,
//! p10, and p90 nanoseconds per iteration. [`Harness::finish`] prints a
//! machine-readable JSON document between `BENCH_JSON_BEGIN`/`_END`
//! markers and, when `COHESION_BENCH_OUT=<dir>` is set, also writes it to
//! `<dir>/BENCH_<harness>.json` so benchmark trajectories can be recorded
//! across commits.
//!
//! # Example
//!
//! ```
//! use cohesion_testkit::bench::Harness;
//! use std::hint::black_box;
//!
//! let mut h = Harness::new("example");
//! h.bench("add", |b| {
//!     let mut i = 0u64;
//!     b.iter(|| {
//!         i += 1;
//!         black_box(i)
//!     });
//! });
//! let summaries = h.finish();
//! assert_eq!(summaries.len(), 1);
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default samples (timed batches) per benchmark.
pub const DEFAULT_SAMPLES: usize = 30;

/// Environment variable naming a directory to write `BENCH_*.json` into.
pub const OUT_ENV: &str = "COHESION_BENCH_OUT";

/// Per-benchmark timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Full benchmark name (`group/name` for grouped benches).
    pub name: String,
    /// Median ns/iter across samples.
    pub median_ns: f64,
    /// 10th-percentile ns/iter.
    pub p10_ns: f64,
    /// 90th-percentile ns/iter.
    pub p90_ns: f64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Fastest sample's ns/iter.
    pub min_ns: f64,
    /// Timed samples taken.
    pub samples: usize,
    /// Iterations per sample (the calibrated batch size).
    pub iters_per_sample: u64,
}

impl Summary {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"median_ns\":{:.3},\"p10_ns\":{:.3},\"p90_ns\":{:.3},\"mean_ns\":{:.3},\"min_ns\":{:.3},\"samples\":{},\"iters_per_sample\":{}}}",
            self.name,
            self.median_ns,
            self.p10_ns,
            self.p90_ns,
            self.mean_ns,
            self.min_ns,
            self.samples,
            self.iters_per_sample
        )
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else {
        format!("{:8.2} ms", ns / 1_000_000.0)
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] exactly once
/// with the code to time (setup stays outside the timed region).
pub struct Bencher {
    samples: usize,
    result: Option<(Vec<f64>, u64)>,
}

impl Bencher {
    /// Times `f`: warmup + calibration, then `samples` timed batches. The
    /// return value of `f` is passed through [`black_box`] so the work is
    /// not optimized away.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        assert!(self.result.is_none(), "Bencher::iter called twice");
        // Warmup and calibration: double the batch until one batch takes
        // long enough to time reliably or the warmup budget is spent.
        let warmup_budget = Duration::from_millis(20);
        let warmup_start = Instant::now();
        let mut batch = 1u64;
        let per_iter_secs = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(2) || warmup_start.elapsed() >= warmup_budget {
                break dt.as_secs_f64() / batch as f64;
            }
            batch = batch.saturating_mul(2);
        };
        // Aim for ~1 ms per sample so short benchmarks are averaged over
        // many iterations while long ones run once per sample.
        let iters = ((0.001 / per_iter_secs.max(1e-12)) as u64).clamp(1, 1 << 30);
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            times.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.result = Some((times, iters));
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let idx = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A named collection of benchmarks (one per bench target).
pub struct Harness {
    name: String,
    samples: usize,
    results: Vec<Summary>,
}

impl Harness {
    /// A harness named `name` (names the JSON document and output file).
    pub fn new(name: &str) -> Self {
        eprintln!("benchmarking {name} (wall-clock; median/p10/p90 per iteration)");
        Harness {
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            results: Vec::new(),
        }
    }

    fn bench_with(&mut self, name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples,
            result: None,
        };
        f(&mut b);
        let (times, iters) = b
            .result
            .unwrap_or_else(|| panic!("benchmark '{name}' never called Bencher::iter"));
        let summary = Summary {
            name: name.to_string(),
            median_ns: percentile(&times, 0.5),
            p10_ns: percentile(&times, 0.1),
            p90_ns: percentile(&times, 0.9),
            mean_ns: times.iter().sum::<f64>() / times.len() as f64,
            min_ns: times[0],
            samples: times.len(),
            iters_per_sample: iters,
        };
        eprintln!(
            "  {:<44} median {}   p10 {}   p90 {}   ({} samples × {} iters)",
            summary.name,
            human_time(summary.median_ns),
            human_time(summary.p10_ns),
            human_time(summary.p90_ns),
            summary.samples,
            summary.iters_per_sample
        );
        self.results.push(summary);
    }

    /// Runs one benchmark with the harness-default sample count.
    pub fn bench(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        self.bench_with(name, self.samples, f)
    }

    /// Starts a named group: benches are reported as `group/name` and may
    /// use a group-specific sample count (for slow end-to-end paths).
    pub fn group(&mut self, name: &str) -> Group<'_> {
        let samples = self.samples;
        Group {
            harness: self,
            prefix: name.to_string(),
            samples,
        }
    }

    /// Prints the JSON document (and writes `BENCH_<name>.json` when
    /// `COHESION_BENCH_OUT` is set), returning the summaries.
    pub fn finish(self) -> Vec<Summary> {
        let body: Vec<String> = self.results.iter().map(|s| format!("  {}", s.json())).collect();
        let doc = format!(
            "{{\"harness\":\"{}\",\"benchmarks\":[\n{}\n]}}",
            self.name,
            body.join(",\n")
        );
        // File first: a consumer piping stdout through `head` closes the
        // pipe early, and the recording must survive that.
        if let Some(dir) = std::env::var_os(OUT_ENV) {
            let dir = std::path::PathBuf::from(dir);
            let path = dir.join(format!("BENCH_{}.json", self.name));
            if let Err(e) = std::fs::create_dir_all(&dir)
                .and_then(|_| std::fs::write(&path, format!("{doc}\n")))
            {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        println!("BENCH_JSON_BEGIN");
        println!("{doc}");
        println!("BENCH_JSON_END");
        self.results
    }
}

/// A benchmark group; see [`Harness::group`].
pub struct Group<'a> {
    harness: &'a mut Harness,
    prefix: String,
    samples: usize,
}

impl Group<'_> {
    /// Overrides the sample count for this group's benches.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.prefix, name);
        self.harness.bench_with(&full, self.samples, f);
    }

    /// Ends the group (provided for call-site symmetry; dropping works
    /// too).
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_sane_stats() {
        let mut h = Harness::new("selftest");
        h.bench("noop_counter", |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(i)
            });
        });
        let mut g = h.group("grouped").sample_size(5);
        g.bench("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for j in 0..100u64 {
                    acc = acc.wrapping_add(black_box(j));
                }
                acc
            })
        });
        g.finish();
        let out = h.finish();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].name, "noop_counter");
        assert_eq!(out[1].name, "grouped/spin");
        for s in &out {
            assert!(s.median_ns > 0.0);
            assert!(s.p10_ns <= s.median_ns && s.median_ns <= s.p90_ns);
            assert!(s.samples >= 2);
        }
        assert_eq!(out[1].samples, 5);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }
}
