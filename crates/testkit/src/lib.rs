#![deny(missing_docs)]

//! First-party determinism testkit for the Cohesion reproduction.
//!
//! The workspace builds and tests fully offline: nothing here (or anywhere
//! else in the tree) depends on a crates.io package. The testkit owns the
//! pieces of tooling that would otherwise be external:
//!
//! * [`rng`] — a seedable SplitMix64 / xoshiro256\*\* PRNG with
//!   `gen_range` / `shuffle` / `choose`, usable both by the test harness
//!   and by future kernel input generation.
//! * [`prop`] — a minimal shrinking property-test harness. Strategies
//!   cover integer ranges, `one_of` / `sample`, vectors, tuples, and
//!   mapped compositions; every property runs ≥ 64 deterministic cases by
//!   default; failing cases are greedily shrunk and every failure prints a
//!   `COHESION_PROP_SEED=<n>` replay line (the env var is honored for
//!   deterministic reruns).
//! * [`bench`](mod@bench) — a `harness = false` wall-clock micro-benchmark runner
//!   (warmup + timed iterations, median/p10/p90 per benchmark, and
//!   machine-readable JSON so `BENCH_*.json` trajectories can be
//!   recorded).
//! * [`pool`] — a scoped worker pool (`run_jobs`) that executes
//!   embarrassingly parallel job lists on `COHESION_JOBS` workers while
//!   returning results in deterministic input order; the figure harness
//!   runs every sweep through it.

pub mod bench;
pub mod pool;
pub mod prop;
pub mod rng;

pub use rng::Rng;
