//! A dependency-free scoped worker pool for embarrassingly parallel jobs.
//!
//! The figure harness runs hundreds of independent simulations (kernel ×
//! design point × machine size); each one is single-threaded and
//! deterministic, so running them on different OS threads changes nothing
//! about the results — only the wall-clock time of the sweep. This module
//! owns that parallelism for the whole workspace:
//!
//! * [`run_jobs`] executes a job list on a fixed number of workers and
//!   returns the results **in input order**, so output built from them
//!   (CSV files, tables, `BENCH_*.json`) is bit-identical whether the
//!   sweep ran on one worker or sixteen.
//! * [`run_jobs_observed`] additionally reports each job's index, result,
//!   and wall-clock duration as it completes — the hook the bench harness
//!   uses for `[7/40] heat @ sparse16k … 1.8s` progress lines.
//! * [`default_jobs`] picks the worker count: the `COHESION_JOBS`
//!   environment variable when set, otherwise the machine's available
//!   parallelism.
//! * [`WorkerPool`] is the *persistent* counterpart of [`run_jobs`]: a
//!   long-lived pool with a bounded submission queue (backpressure is an
//!   explicit [`SubmitError::Full`], never an unbounded buffer), panic
//!   isolation per job, cooperative cancellation via [`CancelToken`], and
//!   a graceful [`WorkerPool::drain`] that finishes queued work before
//!   the threads exit. `cohesiond` schedules client-submitted simulation
//!   jobs on it.
//!
//! Jobs must be [`Send`] closures over [`Send`] inputs: the type system
//! rejects jobs that smuggle shared mutable state, which is what keeps a
//! parallel sweep trivially deterministic. A panicking job does not tear
//! down the process from a worker thread; the pool finishes the remaining
//! jobs, then re-raises the panic of the **lowest-indexed** failed job on
//! the calling thread, so the propagated failure is deterministic too.
//!
//! # Example
//!
//! ```
//! use cohesion_testkit::pool;
//!
//! // Results arrive in input order regardless of which worker ran what.
//! let squares = pool::run_jobs(4, (0u64..32).collect(), |i| i * i);
//! assert_eq!(squares, (0u64..32).map(|i| i * i).collect::<Vec<_>>());
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Environment variable overriding the default worker count.
///
/// `COHESION_JOBS=1` forces sequential execution (useful when bisecting or
/// profiling a single simulation); invalid or zero values are ignored with
/// a warning.
pub const JOBS_ENV: &str = "COHESION_JOBS";

/// The default worker count: [`JOBS_ENV`] when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 if unknown).
///
/// ```
/// assert!(cohesion_testkit::pool::default_jobs() >= 1);
/// ```
pub fn default_jobs() -> usize {
    match std::env::var(JOBS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("warning: ignoring invalid {JOBS_ENV}={v:?} (want a positive integer)");
                available_parallelism()
            }
        },
        Err(_) => available_parallelism(),
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Runs every job in `jobs` on at most `workers` OS threads and returns
/// the results in input order.
///
/// `workers` is clamped to `1..=jobs.len()`; with one worker (or one job)
/// everything runs inline on the calling thread, so `--jobs 1` really is
/// the sequential path. Panics in jobs are propagated (see the
/// [module docs](self) for the ordering guarantee).
///
/// ```
/// use cohesion_testkit::pool;
///
/// let upper = pool::run_jobs(2, vec!["swcc", "hwcc"], |s: &str| s.to_uppercase());
/// assert_eq!(upper, vec!["SWCC", "HWCC"]);
/// assert!(pool::run_jobs(8, Vec::<u32>::new(), |x| x).is_empty());
/// ```
pub fn run_jobs<T, R, F>(workers: usize, jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    run_jobs_observed(workers, jobs, f, |_, _, _| {})
}

/// Like [`run_jobs`], but calls `done(index, &result, elapsed)` as each
/// job completes (from whichever thread ran it), with the job's wall-clock
/// duration. Completion order is nondeterministic; the returned `Vec` is
/// still in input order.
///
/// ```
/// use cohesion_testkit::pool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let completed = AtomicUsize::new(0);
/// let out = pool::run_jobs_observed(
///     2,
///     vec![1u32, 2, 3],
///     |x| x + 1,
///     |_index, _result, _elapsed| {
///         completed.fetch_add(1, Ordering::Relaxed);
///     },
/// );
/// assert_eq!(out, vec![2, 3, 4]);
/// assert_eq!(completed.load(Ordering::Relaxed), 3);
/// ```
pub fn run_jobs_observed<T, R, F, O>(workers: usize, jobs: Vec<T>, f: F, done: O) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    O: Fn(usize, &R, Duration) + Sync,
{
    let n = jobs.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let start = Instant::now();
                let r = f(item);
                done(i, &r, start.elapsed());
                r
            })
            .collect();
    }

    // One slot per job for both input and output; a shared atomic cursor
    // hands out work. Workers never touch the same slot twice, so the
    // mutexes are uncontended — they exist to make the slot transfer
    // provably safe without unsafe code.
    let work: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("each job taken once");
                let start = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(r) => {
                        done(i, &r, start.elapsed());
                        *out[i].lock().unwrap() = Some(r);
                    }
                    Err(payload) => panics.lock().unwrap().push((i, payload)),
                }
            });
        }
    });

    let mut panics = panics.into_inner().unwrap();
    if !panics.is_empty() {
        panics.sort_by_key(|(i, _)| *i);
        resume_unwind(panics.remove(0).1);
    }
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("every job produced a result"))
        .collect()
}

// ---------------------------------------------------------------------
// Persistent pool: long-lived workers, bounded queue, graceful drain
// ---------------------------------------------------------------------

/// A cooperative cancellation flag shared between a job producer and the
/// jobs it submitted.
///
/// Cancellation is *advisory*: a simulation that is already running is
/// never interrupted mid-cycle (that would break determinism guarantees);
/// instead, jobs check [`CancelToken::is_cancelled`] before starting
/// expensive work and return early. Cloning the token shares the flag.
///
/// ```
/// use cohesion_testkit::pool::CancelToken;
///
/// let t = CancelToken::new();
/// let t2 = t.clone();
/// assert!(!t2.is_cancelled());
/// t.cancel();
/// assert!(t2.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken(Arc::new(AtomicBool::new(false)))
    }

    /// Sets the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Why [`WorkerPool::submit`] rejected a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — the caller must shed load (this
    /// is the backpressure signal `cohesiond` turns into a `queue-full`
    /// wire error) or retry later.
    Full,
    /// The pool is draining or has been drained; no new work is accepted.
    Draining,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "worker pool queue is full"),
            SubmitError::Draining => write!(f, "worker pool is draining"),
        }
    }
}

impl std::error::Error for SubmitError {}

type BoxedJob = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct PoolState {
    queue: VecDeque<BoxedJob>,
    draining: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    queue_cap: usize,
    running: AtomicUsize,
    completed: AtomicUsize,
    panicked: AtomicUsize,
}

/// A long-lived worker pool with a bounded submission queue.
///
/// Unlike [`run_jobs`], which executes one fixed job list and returns,
/// `WorkerPool` keeps `workers` OS threads alive across many independent
/// submissions — the shape a server needs. Guarantees:
///
/// * **Bounded memory.** At most `queue_cap` jobs wait; beyond that,
///   [`WorkerPool::submit`] returns [`SubmitError::Full`] instead of
///   buffering without limit.
/// * **Panic isolation.** A panicking job is caught and counted
///   ([`WorkerPool::panicked`]); the worker thread survives and moves on
///   to the next job. (Servers report the failure to one client; they do
///   not die.)
/// * **Graceful drain.** [`WorkerPool::drain`] stops intake, lets every
///   queued and running job finish, then joins the worker threads.
///   Dropping the pool without calling `drain` drains it too.
///
/// Jobs communicate results however they like (typically an
/// `std::sync::mpsc` channel captured by the closure).
///
/// ```
/// use cohesion_testkit::pool::WorkerPool;
/// use std::sync::mpsc;
///
/// let pool = WorkerPool::new(2, 64);
/// let (tx, rx) = mpsc::channel();
/// for i in 0u64..8 {
///     let tx = tx.clone();
///     pool.submit(move || tx.send(i * i).unwrap()).unwrap();
/// }
/// drop(tx);
/// let mut got: Vec<u64> = rx.iter().collect();
/// got.sort();
/// assert_eq!(got, (0..8).map(|i| i * i).collect::<Vec<_>>());
/// pool.drain();
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (clamped to ≥ 1) servicing a queue of at
    /// most `queue_cap` pending jobs (clamped to ≥ 1).
    pub fn new(workers: usize, queue_cap: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            work_ready: Condvar::new(),
            queue_cap: queue_cap.max(1),
            running: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(shared))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    fn worker_loop(shared: Arc<PoolShared>) {
        loop {
            let job = {
                let mut st = shared.state.lock().expect("pool state poisoned");
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                    if st.draining {
                        return;
                    }
                    st = shared.work_ready.wait(st).expect("pool state poisoned");
                }
            };
            shared.running.fetch_add(1, Ordering::AcqRel);
            let outcome = catch_unwind(AssertUnwindSafe(job));
            shared.running.fetch_sub(1, Ordering::AcqRel);
            shared.completed.fetch_add(1, Ordering::AcqRel);
            if outcome.is_err() {
                shared.panicked.fetch_add(1, Ordering::AcqRel);
            }
            // Wake the drainer (and fellow workers) in case this was the
            // last job standing between drain() and the exit condition.
            shared.work_ready.notify_all();
        }
    }

    /// Enqueues `job` for execution on some worker.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when `queue_cap` jobs are already waiting,
    /// [`SubmitError::Draining`] after [`WorkerPool::drain`] began.
    pub fn submit<F>(&self, job: F) -> Result<(), SubmitError>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        if st.draining {
            return Err(SubmitError::Draining);
        }
        if st.queue.len() >= self.shared.queue_cap {
            return Err(SubmitError::Full);
        }
        st.queue.push_back(Box::new(job));
        drop(st);
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Jobs waiting in the queue (not yet started).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool state poisoned").queue.len()
    }

    /// Jobs currently executing on a worker.
    pub fn running(&self) -> usize {
        self.shared.running.load(Ordering::Acquire)
    }

    /// Jobs that have finished (including panicked ones).
    pub fn completed(&self) -> usize {
        self.shared.completed.load(Ordering::Acquire)
    }

    /// Jobs that panicked (caught; the worker survived).
    pub fn panicked(&self) -> usize {
        self.shared.panicked.load(Ordering::Acquire)
    }

    /// Stops intake, finishes every queued and running job, and joins the
    /// worker threads. Returns the total number of jobs the pool executed
    /// over its lifetime.
    pub fn drain(mut self) -> usize {
        self.begin_drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.completed()
    }

    fn begin_drain(&self) {
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        st.draining = true;
        drop(st);
        self.shared.work_ready.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.begin_drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod worker_pool_tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn executes_submitted_jobs_and_drains() {
        let pool = WorkerPool::new(4, 128);
        let (tx, rx) = mpsc::channel();
        for i in 0u32..50 {
            let tx = tx.clone();
            pool.submit(move || tx.send(i).unwrap()).unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(pool.drain(), 50);
    }

    #[test]
    fn bounded_queue_rejects_with_full() {
        // One worker blocked on a gate; capacity 2 → third submit is Full.
        let pool = WorkerPool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // Wait until the gate job occupies the worker so the queue is empty.
        while pool.running() == 0 {
            std::thread::yield_now();
        }
        pool.submit(|| {}).unwrap();
        pool.submit(|| {}).unwrap();
        assert_eq!(pool.submit(|| {}), Err(SubmitError::Full));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        assert_eq!(pool.drain(), 3);
    }

    #[test]
    fn submit_after_drop_of_drained_pool_is_rejected() {
        let pool = WorkerPool::new(2, 8);
        pool.begin_drain();
        assert_eq!(pool.submit(|| {}), Err(SubmitError::Draining));
        assert_eq!(pool.drain(), 0);
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = WorkerPool::new(1, 8);
        pool.submit(|| panic!("job boom")).unwrap();
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(7u8).unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(30)), Ok(7));
        assert_eq!(pool.panicked(), 1);
        assert_eq!(pool.drain(), 2);
    }

    #[test]
    fn drain_finishes_queued_work() {
        let pool = WorkerPool::new(2, 256);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        assert_eq!(pool.drain(), 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn cancel_token_shares_flag_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }

    #[test]
    fn cancelled_jobs_can_skip_work() {
        let pool = WorkerPool::new(2, 64);
        let token = CancelToken::new();
        let ran = Arc::new(AtomicUsize::new(0));
        token.cancel();
        for _ in 0..16 {
            let token = token.clone();
            let ran = Arc::clone(&ran);
            pool.submit(move || {
                if token.is_cancelled() {
                    return;
                }
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.drain();
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_job_list_returns_empty() {
        let out: Vec<u32> = run_jobs(4, Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_workers_preserves_order() {
        let jobs: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = jobs.iter().map(|i| i * 3 + 1).collect();
        assert_eq!(run_jobs(3, jobs, |i| i * 3 + 1), expect);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        assert_eq!(run_jobs(64, vec![1u8, 2], |x| x * 2), vec![2, 4]);
    }

    #[test]
    fn zero_workers_clamps_to_sequential() {
        assert_eq!(run_jobs(0, vec![5i32], |x| x - 1), vec![4]);
    }

    #[test]
    fn panic_propagates_with_payload() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_jobs(4, (0..16).collect(), |i: i32| {
                if i == 9 {
                    panic!("job nine exploded");
                }
                i
            });
        }))
        .expect_err("pool must re-raise the job panic");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job nine exploded"), "payload was {msg:?}");
    }

    #[test]
    fn lowest_indexed_panic_wins() {
        // Both jobs panic; the pool must deterministically re-raise job 2's.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_jobs(4, (0..8).collect(), |i: i32| {
                if i >= 2 {
                    panic!("boom {i}");
                }
                i
            });
        }))
        .expect_err("panics must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "boom 2");
    }

    #[test]
    fn observer_sees_every_index_once() {
        let seen = Mutex::new(vec![0u32; 20]);
        run_jobs_observed(
            4,
            (0..20usize).collect(),
            |i| i,
            |idx, &r, elapsed| {
                assert_eq!(idx, r);
                assert!(elapsed <= Duration::from_secs(60));
                seen.lock().unwrap()[idx] += 1;
            },
        );
        assert!(seen.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
