//! A dependency-free scoped worker pool for embarrassingly parallel jobs.
//!
//! The figure harness runs hundreds of independent simulations (kernel ×
//! design point × machine size); each one is single-threaded and
//! deterministic, so running them on different OS threads changes nothing
//! about the results — only the wall-clock time of the sweep. This module
//! owns that parallelism for the whole workspace:
//!
//! * [`run_jobs`] executes a job list on a fixed number of workers and
//!   returns the results **in input order**, so output built from them
//!   (CSV files, tables, `BENCH_*.json`) is bit-identical whether the
//!   sweep ran on one worker or sixteen.
//! * [`run_jobs_observed`] additionally reports each job's index, result,
//!   and wall-clock duration as it completes — the hook the bench harness
//!   uses for `[7/40] heat @ sparse16k … 1.8s` progress lines.
//! * [`default_jobs`] picks the worker count: the `COHESION_JOBS`
//!   environment variable when set, otherwise the machine's available
//!   parallelism.
//!
//! Jobs must be [`Send`] closures over [`Send`] inputs: the type system
//! rejects jobs that smuggle shared mutable state, which is what keeps a
//! parallel sweep trivially deterministic. A panicking job does not tear
//! down the process from a worker thread; the pool finishes the remaining
//! jobs, then re-raises the panic of the **lowest-indexed** failed job on
//! the calling thread, so the propagated failure is deterministic too.
//!
//! # Example
//!
//! ```
//! use cohesion_testkit::pool;
//!
//! // Results arrive in input order regardless of which worker ran what.
//! let squares = pool::run_jobs(4, (0u64..32).collect(), |i| i * i);
//! assert_eq!(squares, (0u64..32).map(|i| i * i).collect::<Vec<_>>());
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable overriding the default worker count.
///
/// `COHESION_JOBS=1` forces sequential execution (useful when bisecting or
/// profiling a single simulation); invalid or zero values are ignored with
/// a warning.
pub const JOBS_ENV: &str = "COHESION_JOBS";

/// The default worker count: [`JOBS_ENV`] when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 if unknown).
///
/// ```
/// assert!(cohesion_testkit::pool::default_jobs() >= 1);
/// ```
pub fn default_jobs() -> usize {
    match std::env::var(JOBS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("warning: ignoring invalid {JOBS_ENV}={v:?} (want a positive integer)");
                available_parallelism()
            }
        },
        Err(_) => available_parallelism(),
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Runs every job in `jobs` on at most `workers` OS threads and returns
/// the results in input order.
///
/// `workers` is clamped to `1..=jobs.len()`; with one worker (or one job)
/// everything runs inline on the calling thread, so `--jobs 1` really is
/// the sequential path. Panics in jobs are propagated (see the
/// [module docs](self) for the ordering guarantee).
///
/// ```
/// use cohesion_testkit::pool;
///
/// let upper = pool::run_jobs(2, vec!["swcc", "hwcc"], |s: &str| s.to_uppercase());
/// assert_eq!(upper, vec!["SWCC", "HWCC"]);
/// assert!(pool::run_jobs(8, Vec::<u32>::new(), |x| x).is_empty());
/// ```
pub fn run_jobs<T, R, F>(workers: usize, jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    run_jobs_observed(workers, jobs, f, |_, _, _| {})
}

/// Like [`run_jobs`], but calls `done(index, &result, elapsed)` as each
/// job completes (from whichever thread ran it), with the job's wall-clock
/// duration. Completion order is nondeterministic; the returned `Vec` is
/// still in input order.
///
/// ```
/// use cohesion_testkit::pool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let completed = AtomicUsize::new(0);
/// let out = pool::run_jobs_observed(
///     2,
///     vec![1u32, 2, 3],
///     |x| x + 1,
///     |_index, _result, _elapsed| {
///         completed.fetch_add(1, Ordering::Relaxed);
///     },
/// );
/// assert_eq!(out, vec![2, 3, 4]);
/// assert_eq!(completed.load(Ordering::Relaxed), 3);
/// ```
pub fn run_jobs_observed<T, R, F, O>(workers: usize, jobs: Vec<T>, f: F, done: O) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    O: Fn(usize, &R, Duration) + Sync,
{
    let n = jobs.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let start = Instant::now();
                let r = f(item);
                done(i, &r, start.elapsed());
                r
            })
            .collect();
    }

    // One slot per job for both input and output; a shared atomic cursor
    // hands out work. Workers never touch the same slot twice, so the
    // mutexes are uncontended — they exist to make the slot transfer
    // provably safe without unsafe code.
    let work: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("each job taken once");
                let start = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(r) => {
                        done(i, &r, start.elapsed());
                        *out[i].lock().unwrap() = Some(r);
                    }
                    Err(payload) => panics.lock().unwrap().push((i, payload)),
                }
            });
        }
    });

    let mut panics = panics.into_inner().unwrap();
    if !panics.is_empty() {
        panics.sort_by_key(|(i, _)| *i);
        resume_unwind(panics.remove(0).1);
    }
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("every job produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_job_list_returns_empty() {
        let out: Vec<u32> = run_jobs(4, Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_workers_preserves_order() {
        let jobs: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = jobs.iter().map(|i| i * 3 + 1).collect();
        assert_eq!(run_jobs(3, jobs, |i| i * 3 + 1), expect);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        assert_eq!(run_jobs(64, vec![1u8, 2], |x| x * 2), vec![2, 4]);
    }

    #[test]
    fn zero_workers_clamps_to_sequential() {
        assert_eq!(run_jobs(0, vec![5i32], |x| x - 1), vec![4]);
    }

    #[test]
    fn panic_propagates_with_payload() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_jobs(4, (0..16).collect(), |i: i32| {
                if i == 9 {
                    panic!("job nine exploded");
                }
                i
            });
        }))
        .expect_err("pool must re-raise the job panic");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job nine exploded"), "payload was {msg:?}");
    }

    #[test]
    fn lowest_indexed_panic_wins() {
        // Both jobs panic; the pool must deterministically re-raise job 2's.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_jobs(4, (0..8).collect(), |i: i32| {
                if i >= 2 {
                    panic!("boom {i}");
                }
                i
            });
        }))
        .expect_err("panics must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "boom 2");
    }

    #[test]
    fn observer_sees_every_index_once() {
        let seen = Mutex::new(vec![0u32; 20]);
        run_jobs_observed(
            4,
            (0..20usize).collect(),
            |i| i,
            |idx, &r, elapsed| {
                assert_eq!(idx, r);
                assert!(elapsed <= Duration::from_secs(60));
                seen.lock().unwrap()[idx] += 1;
            },
        );
        assert!(seen.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
