//! A minimal shrinking property-test harness.
//!
//! Replaces `proptest` for this workspace with zero dependencies. The
//! design borrows Hypothesis's key idea: a [`Strategy`] is just a function
//! from a stream of raw `u64` draws (a [`Source`]) to a value, and the
//! *shrinker operates on the recorded draw stream*, not on values. Any
//! composition — `map`, [`one_of`], vectors, tuples — therefore shrinks
//! for free: the harness deletes, zeroes, and minimizes stream entries and
//! regenerates, and because every integer strategy maps a draw of 0 to its
//! low bound, streams shrink toward structurally minimal inputs.
//!
//! Properties are plain closures that `assert!`/`panic!` on failure and
//! may call [`assume`] to discard uninteresting cases. Each property runs
//! [`DEFAULT_CASES`] deterministic cases by default (seeded from the
//! property name, so reruns are bit-identical); on failure the harness
//! greedily shrinks, then reports the minimal counterexample together with
//! a `COHESION_PROP_SEED=<n>` line. Setting that environment variable (or
//! calling [`Runner::seed`]) reruns the identical case sequence.
//!
//! # Example
//!
//! ```
//! use cohesion_testkit::prop::{self, Strategy};
//!
//! prop::Runner::new("reversing_twice_is_identity")
//!     .run(&prop::vec_of(prop::range(0u32..1000), 0..50), |v| {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         assert_eq!(v, w);
//!     });
//! ```

use std::cell::{Cell, RefCell};
use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::{Rng, SplitMix64};

/// Cases each property runs when [`Runner::cases`] is not called.
pub const DEFAULT_CASES: u32 = 64;

/// Shrink attempts allowed per failure before reporting the best found.
pub const DEFAULT_SHRINK_ITERS: u32 = 4096;

/// The environment variable that overrides the base seed for replay.
pub const SEED_ENV: &str = "COHESION_PROP_SEED";

// ---------------------------------------------------------------------------
// Draw source
// ---------------------------------------------------------------------------

/// The stream of raw draws a strategy consumes.
///
/// In *fresh* mode draws come from the PRNG; in *replay* mode they come
/// from a recorded stream (zero-padded when exhausted — by construction
/// zero draws produce minimal values). Either way every consumed draw is
/// logged, which is what makes stream-level shrinking possible.
pub struct Source {
    rng: Option<Rng>,
    replay: Vec<u64>,
    pos: usize,
    log: Vec<u64>,
}

impl Source {
    /// A fresh source drawing from seed `seed`.
    pub fn fresh(seed: u64) -> Self {
        Source {
            rng: Some(Rng::new(seed)),
            replay: Vec::new(),
            pos: 0,
            log: Vec::new(),
        }
    }

    /// A replay source that feeds back a recorded stream, then zeroes.
    pub fn replay(stream: &[u64]) -> Self {
        Source {
            rng: None,
            replay: stream.to_vec(),
            pos: 0,
            log: Vec::new(),
        }
    }

    /// The next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        let v = match &mut self.rng {
            Some(rng) => rng.next_u64(),
            None => {
                let v = self.replay.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                v
            }
        };
        self.log.push(v);
        v
    }

    /// The draws actually consumed (normalized: replay padding included,
    /// unused tail absent).
    pub fn into_log(self) -> Vec<u64> {
        self.log
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values from a [`Source`].
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, src: &mut Source) -> Self::Value;

    /// A strategy producing `f(value)`.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous alternatives can share a
    /// [`one_of`] list.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, src: &mut Source) -> V {
        (**self).generate(src)
    }
}

/// See [`Strategy::map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, src: &mut Source) -> U {
        (self.f)(self.inner.generate(src))
    }
}

/// An inclusive integer range strategy; a draw of 0 yields the low bound,
/// so shrinking pulls values toward it.
#[derive(Debug, Clone, Copy)]
pub struct IntRange<T> {
    lo: T,
    hi_incl: T,
}

/// Integer types usable with [`range`].
pub trait RangeValue: Copy + PartialOrd + fmt::Debug {
    /// Maps a raw draw into `[lo, hi]` (inclusive).
    fn from_draw_incl(draw: u64, lo: Self, hi: Self) -> Self;
    /// `self - 1` (never called on the type's minimum).
    fn decr(self) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty => $wide:ty),*) => {$(
        impl RangeValue for $t {
            fn from_draw_incl(draw: u64, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                let off = (draw as u128) % span;
                (lo as $wide).wrapping_add(off as $wide) as $t
            }
            fn decr(self) -> Self {
                self.wrapping_sub(1)
            }
        }
    )*};
}
impl_range_value!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                  i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl<T: RangeValue> From<Range<T>> for IntRange<T> {
    fn from(r: Range<T>) -> Self {
        assert!(r.start < r.end, "range strategy over an empty range");
        IntRange {
            lo: r.start,
            hi_incl: r.end.decr(),
        }
    }
}

impl<T: RangeValue> From<RangeInclusive<T>> for IntRange<T> {
    fn from(r: RangeInclusive<T>) -> Self {
        assert!(r.start() <= r.end(), "range strategy over an empty range");
        IntRange {
            lo: *r.start(),
            hi_incl: *r.end(),
        }
    }
}

impl<T: RangeValue> Strategy for IntRange<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        T::from_draw_incl(src.next_u64(), self.lo, self.hi_incl)
    }
}

/// Uniform draw from an integer range (`a..b` or `a..=b`).
pub fn range<T: RangeValue, R: Into<IntRange<T>>>(r: R) -> IntRange<T> {
    r.into()
}

/// Always produces a clone of `value` (consumes no draws).
pub fn just<T: Clone + fmt::Debug>(value: T) -> Just<T> {
    Just(value)
}

/// See [`just`].
#[derive(Debug, Clone)]
pub struct Just<T>(T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _src: &mut Source) -> T {
        self.0.clone()
    }
}

/// Uniformly picks one of the listed values; shrinks toward the first, so
/// list the simplest value first.
pub fn sample<T: Clone + fmt::Debug>(items: &[T]) -> Sample<T> {
    assert!(!items.is_empty(), "sample of an empty list");
    Sample {
        items: items.to_vec(),
    }
}

/// See [`sample`].
#[derive(Debug, Clone)]
pub struct Sample<T> {
    items: Vec<T>,
}

impl<T: Clone + fmt::Debug> Strategy for Sample<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        let idx = (src.next_u64() % self.items.len() as u64) as usize;
        self.items[idx].clone()
    }
}

/// Booleans; shrinks toward `false`.
pub fn bools() -> Bools {
    Bools
}

/// See [`bools`].
#[derive(Debug, Clone, Copy)]
pub struct Bools;

impl Strategy for Bools {
    type Value = bool;
    fn generate(&self, src: &mut Source) -> bool {
        src.next_u64() & 1 == 1
    }
}

/// Uniformly delegates to one of the alternative strategies; shrinks
/// toward the first alternative, so list the simplest first.
pub fn one_of<V: fmt::Debug>(alts: Vec<BoxedStrategy<V>>) -> OneOf<V> {
    assert!(!alts.is_empty(), "one_of of an empty list");
    OneOf { alts }
}

/// See [`one_of`].
pub struct OneOf<V> {
    alts: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, src: &mut Source) -> V {
        let idx = (src.next_u64() % self.alts.len() as u64) as usize;
        self.alts[idx].generate(src)
    }
}

/// A vector of `elem` draws with length drawn from `len`; shrinks both the
/// length and the elements.
pub fn vec_of<S: Strategy, R: Into<IntRange<usize>>>(elem: S, len: R) -> VecOf<S> {
    VecOf {
        elem,
        len: len.into(),
    }
}

/// See [`vec_of`].
pub struct VecOf<S> {
    elem: S,
    len: IntRange<usize>,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, src: &mut Source) -> Vec<S::Value> {
        let n = self.len.generate(src);
        (0..n).map(|_| self.elem.generate(src)).collect()
    }
}

/// Like [`vec_of`] but the produced elements are pairwise distinct (a
/// deterministic-order replacement for a hash-set strategy). The target
/// length is best-effort: if the element space is smaller than the drawn
/// length, fewer (but ≥ 1) elements are produced.
pub fn unique_vec<S, R>(elem: S, len: R) -> UniqueVec<S>
where
    S: Strategy,
    S::Value: PartialEq,
    R: Into<IntRange<usize>>,
{
    UniqueVec {
        elem,
        len: len.into(),
    }
}

/// See [`unique_vec`].
pub struct UniqueVec<S> {
    elem: S,
    len: IntRange<usize>,
}

impl<S> Strategy for UniqueVec<S>
where
    S: Strategy,
    S::Value: PartialEq,
{
    type Value = Vec<S::Value>;
    fn generate(&self, src: &mut Source) -> Vec<S::Value> {
        let n = self.len.generate(src).max(1);
        let mut out: Vec<S::Value> = Vec::with_capacity(n);
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 16 {
            attempts += 1;
            let v = self.elem.generate(src);
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($($S:ident $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, src: &mut Source) -> Self::Value {
                ($(self.$idx.generate(src),)+)
            }
        }
    };
}
tuple_strategy!(A 0, B 1);
tuple_strategy!(A 0, B 1, C 2);
tuple_strategy!(A 0, B 1, C 2, D 3);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4);

// ---------------------------------------------------------------------------
// Assumptions and panic plumbing
// ---------------------------------------------------------------------------

/// The sentinel payload `assume` panics with; the runner regenerates the
/// case instead of failing.
struct DiscardCase;

/// Discards the current case when `cond` is false (the `prop_assume!`
/// replacement).
pub fn assume(cond: bool) {
    if !cond {
        panic::panic_any(DiscardCase);
    }
}

thread_local! {
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static LAST_LOCATION: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Installs (once, process-wide) a panic hook that stays silent for panics
/// the harness is about to catch — shrinking re-runs a failing property
/// hundreds of times and must not spam stderr. Panics outside a property
/// run are forwarded to the previous hook unchanged.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CAPTURING.with(|c| c.get()) {
                let loc = info.location().map(|l| l.to_string());
                LAST_LOCATION.with(|p| *p.borrow_mut() = loc);
            } else {
                prev(info);
            }
        }));
    });
}

enum Outcome {
    Pass,
    Discard,
    Fail(String),
}

fn run_case<V>(prop: &impl Fn(V), value: V) -> Outcome {
    install_quiet_hook();
    CAPTURING.with(|c| c.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    CAPTURING.with(|c| c.set(false));
    match result {
        Ok(()) => Outcome::Pass,
        Err(payload) => {
            if payload.is::<DiscardCase>() {
                return Outcome::Discard;
            }
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            let msg = match LAST_LOCATION.with(|p| p.borrow_mut().take()) {
                Some(loc) => format!("{msg}\n    at {loc}"),
                None => msg,
            };
            Outcome::Fail(msg)
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// A shrunk counterexample, as returned by [`Runner::run_result`].
#[derive(Debug)]
pub struct Failure {
    /// The base seed of the run (replay with `COHESION_PROP_SEED=<seed>`).
    pub seed: u64,
    /// Passing cases before the failure.
    pub cases_passed: u32,
    /// Debug rendering of the minimal (shrunk) input.
    pub minimal: String,
    /// Debug rendering of the originally failing input.
    pub original: String,
    /// The panic message of the minimal input.
    pub message: String,
    /// Shrink attempts spent.
    pub shrink_iters: u32,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "failed after {} passing case(s)\n  minimal input: {}\n  original input: {}\n  error: {}\n  ({} shrink attempts; rerun with {}={})",
            self.cases_passed, self.minimal, self.original, self.message, self.shrink_iters, SEED_ENV, self.seed
        )
    }
}

/// Runs one property over a strategy: deterministic cases, greedy stream
/// shrinking, seed-replay reporting.
pub struct Runner {
    name: String,
    cases: u32,
    seed: Option<u64>,
    max_shrink_iters: u32,
}

impl Runner {
    /// A runner for the property `name` (the name seeds the default case
    /// sequence, so distinct properties explore distinct inputs).
    pub fn new(name: &str) -> Self {
        Runner {
            name: name.to_string(),
            cases: DEFAULT_CASES,
            seed: None,
            max_shrink_iters: DEFAULT_SHRINK_ITERS,
        }
    }

    /// Overrides the number of cases (the default is [`DEFAULT_CASES`]).
    pub fn cases(mut self, n: u32) -> Self {
        assert!(n > 0);
        self.cases = n;
        self
    }

    /// Pins the base seed, overriding both the name-derived default and
    /// the `COHESION_PROP_SEED` environment variable.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Caps shrink attempts per failure.
    pub fn max_shrink_iters(mut self, n: u32) -> Self {
        self.max_shrink_iters = n;
        self
    }

    fn resolve_seed(&self) -> u64 {
        if let Some(s) = self.seed {
            return s;
        }
        if let Ok(v) = std::env::var(SEED_ENV) {
            match v.trim().parse::<u64>() {
                Ok(s) => return s,
                Err(_) => eprintln!("warning: ignoring unparsable {SEED_ENV}={v:?}"),
            }
        }
        // FNV-1a over the property name, mixed once: stable across runs,
        // distinct across properties.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SplitMix64::new(h).next_u64()
    }

    /// Runs the property, panicking with a full report on failure (the
    /// common entry point for `#[test]` functions).
    pub fn run<S: Strategy>(&self, strategy: &S, prop: impl Fn(S::Value)) {
        if let Err(failure) = self.run_result(strategy, prop) {
            eprintln!("\nproperty '{}' {}\n", self.name, failure);
            panic!(
                "property '{}' failed; minimal input: {} — rerun with {}={}",
                self.name, failure.minimal, SEED_ENV, failure.seed
            );
        }
    }

    /// Runs the property, returning the shrunk counterexample instead of
    /// panicking (used by the testkit's own tests).
    pub fn run_result<S: Strategy>(
        &self,
        strategy: &S,
        prop: impl Fn(S::Value),
    ) -> Result<(), Failure> {
        let seed = self.resolve_seed();
        let mut case_seeds = SplitMix64::new(seed);
        let mut passed = 0u32;
        let mut attempts = 0u32;
        let max_attempts = self.cases.saturating_mul(16);
        while passed < self.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "property '{}': too many discarded cases ({} attempts for {} cases) — weaken the assume()s",
                self.name,
                attempts,
                self.cases
            );
            let mut src = Source::fresh(case_seeds.next_u64());
            let value = strategy.generate(&mut src);
            let original = format!("{value:?}");
            match run_case(&prop, value) {
                Outcome::Pass => passed += 1,
                Outcome::Discard => {}
                Outcome::Fail(message) => {
                    let (stream, message, shrink_iters) =
                        shrink(strategy, &prop, src.into_log(), message, self.max_shrink_iters);
                    let minimal = format!("{:?}", strategy.generate(&mut Source::replay(&stream)));
                    return Err(Failure {
                        seed,
                        cases_passed: passed,
                        minimal,
                        original,
                        message,
                        shrink_iters,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Greedy stream-level shrinking: chunk deletion, chunk zeroing, and
/// per-draw minimization, to fixpoint or budget exhaustion.
fn shrink<S: Strategy>(
    strategy: &S,
    prop: &impl Fn(S::Value),
    initial: Vec<u64>,
    initial_msg: String,
    budget: u32,
) -> (Vec<u64>, String, u32) {
    let mut best = initial;
    let mut best_msg = initial_msg;
    let mut iters = 0u32;

    // Progress order: shorter streams first, then lexicographically
    // smaller. Acceptance is restricted to strict improvements in this
    // well-founded order, which guarantees termination — a candidate's
    // *normalized* stream can otherwise grow (e.g. halving a length draw
    // wraps to a larger length) and cycle forever.
    fn shortlex_less(a: &[u64], b: &[u64]) -> bool {
        a.len() < b.len() || (a.len() == b.len() && a < b)
    }

    // Re-runs the property on a candidate stream; `Some` (with the
    // normalized consumed stream) iff the property still fails.
    let try_fail = |stream: &[u64]| -> Option<(Vec<u64>, String)> {
        let mut src = Source::replay(stream);
        let value = strategy.generate(&mut src);
        match run_case(prop, value) {
            Outcome::Fail(m) => Some((src.into_log(), m)),
            _ => None,
        }
    };

    'outer: loop {
        let mut improved = false;

        // Pass 1: delete chunks (halving sizes) — shorter streams mean
        // structurally smaller inputs (fewer/earlier alternatives).
        let mut size = (best.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start + size <= best.len() {
                if iters >= budget {
                    break 'outer;
                }
                iters += 1;
                let mut cand = best.clone();
                cand.drain(start..start + size);
                match try_fail(&cand) {
                    Some((log, m)) if shortlex_less(&log, &best) => {
                        best = log;
                        best_msg = m;
                        improved = true;
                    }
                    _ => start += size,
                }
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }

        // Pass 2: zero chunks — zero draws decode to minimal values.
        let mut size = (best.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start + size <= best.len() {
                if best[start..start + size].iter().all(|&v| v == 0) {
                    start += size;
                    continue;
                }
                if iters >= budget {
                    break 'outer;
                }
                iters += 1;
                let mut cand = best.clone();
                cand[start..start + size].fill(0);
                if let Some((log, m)) = try_fail(&cand) {
                    if shortlex_less(&log, &best) {
                        best = log;
                        best_msg = m;
                        improved = true;
                    }
                }
                start += size;
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }

        // Pass 3: minimize individual draws toward zero.
        let mut i = 0;
        while i < best.len() {
            loop {
                let v = match best.get(i) {
                    Some(&v) if v > 0 => v,
                    _ => break,
                };
                if iters >= budget {
                    break 'outer;
                }
                let mut accepted = false;
                for cand_v in [0, v / 2, v - 1] {
                    if cand_v >= v {
                        continue;
                    }
                    if iters >= budget {
                        break 'outer;
                    }
                    iters += 1;
                    let mut cand = best.clone();
                    cand[i] = cand_v;
                    if let Some((log, m)) = try_fail(&cand) {
                        if shortlex_less(&log, &best) {
                            best = log;
                            best_msg = m;
                            improved = true;
                            accepted = true;
                            break;
                        }
                    }
                }
                if !accepted {
                    break;
                }
            }
            i += 1;
        }

        if !improved {
            break;
        }
    }

    (best, best_msg, iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        Runner::new("passing_property_passes")
            .run(&range(0u32..100), |v| assert!(v < 100));
    }

    #[test]
    fn zero_replay_generates_minimal_values() {
        let mut src = Source::replay(&[]);
        assert_eq!(range(5u32..50).generate(&mut src), 5);
        assert_eq!(range(-3i64..=9).generate(&mut src), -3);
        assert!(!bools().generate(&mut src));
        let v = vec_of(range(0u8..=255), 2..10).generate(&mut src);
        assert_eq!(v, vec![0, 0]);
    }

    #[test]
    fn tuple_and_map_compose() {
        let s = (range(1u32..5), sample(&["a", "b"])).map(|(n, tag)| format!("{tag}{n}"));
        let mut src = Source::fresh(1);
        for _ in 0..100 {
            let v = s.generate(&mut src);
            assert!(v.len() >= 2);
        }
    }

    #[test]
    fn unique_vec_is_unique() {
        let s = unique_vec(range(0u32..8), 1..8);
        let mut src = Source::fresh(3);
        for _ in 0..200 {
            let v = s.generate(&mut src);
            for (i, a) in v.iter().enumerate() {
                assert!(!v[i + 1..].contains(a), "duplicate in {v:?}");
            }
            assert!(!v.is_empty());
        }
    }

    #[test]
    fn assume_discards_without_failing() {
        // Half the cases are discarded; the property still completes.
        Runner::new("assume_discards_without_failing")
            .run(&range(0u32..100), |v| {
                assume(v % 2 == 0);
                assert!(v % 2 == 0);
            });
    }

    #[test]
    fn too_many_discards_is_an_error() {
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Runner::new("too_many_discards").run(&range(0u32..100), |_| assume(false));
        }));
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("too many discarded"), "got: {msg}");
    }
}
