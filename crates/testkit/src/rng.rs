//! Seedable pseudo-random number generation.
//!
//! Two small, well-known generators, implemented from their reference C
//! code and locked to published test vectors:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer. Used for seeding
//!   and for deriving independent substreams from one master seed.
//! * [`Xoshiro256StarStar`] — Blackman/Vigna's xoshiro256\*\*, the
//!   general-purpose generator behind [`Rng`].
//!
//! Neither is cryptographic; both are bit-reproducible across platforms,
//! which is the property the determinism testkit actually needs.

/// Steele, Lea & Flood's SplitMix64 (the reference `splitmix64.c`).
///
/// Every call advances the state by a fixed odd constant and returns a
/// mixed output, so any 64-bit seed — including 0 — yields a full-period
/// stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from any 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Blackman & Vigna's xoshiro256\*\* 1.0 (the reference `xoshiro256starstar.c`).
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeroes (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256** state must be nonzero");
        Xoshiro256StarStar { s }
    }

    /// Seeds the 256-bit state from a single `u64` through SplitMix64, as
    /// the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Integer types [`Rng::gen_range`] can draw.
///
/// Implemented for the unsigned/signed widths the tests use; values are
/// produced by reducing one `u64` draw modulo the span, so a draw of 0
/// always maps to the range's low bound (the property-test shrinker relies
/// on this to pull inputs toward their minimum).
pub trait UniformInt: Copy {
    /// Maps a raw `u64` draw into `[lo, hi)`.
    fn from_draw(draw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn from_draw(draw: u64, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi);
                let span = (hi as u128) - (lo as u128);
                lo + ((draw as u128 % span) as $t)
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn from_draw(draw: u64, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi);
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (draw as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// The testkit's general-purpose seedable generator: xoshiro256\*\* with
/// convenience draws.
///
/// # Example
///
/// ```
/// use cohesion_testkit::Rng;
///
/// let mut rng = Rng::new(42);
/// let die = rng.gen_range(1u32, 7);
/// assert!((1..7).contains(&die));
/// let mut deck: Vec<u32> = (0..52).collect();
/// rng.shuffle(&mut deck);
/// assert_eq!(deck.len(), 52);
/// // Same seed, same stream.
/// assert_eq!(Rng::new(7).next_u64(), Rng::new(7).next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: Xoshiro256StarStar,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Rng {
            inner: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// Returns the next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Draws a value uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range<T: UniformInt + PartialOrd>(&mut self, lo: T, hi: T) -> T {
        assert!(lo < hi, "gen_range requires lo < hi");
        T::from_draw(self.next_u64(), lo, hi)
    }

    /// Draws a boolean that is `true` with probability `num / denom`.
    pub fn gen_ratio(&mut self, num: u32, denom: u32) -> bool {
        assert!(denom > 0 && num <= denom);
        self.gen_range(0u32, denom) < num
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0usize, i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0usize, slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First outputs of the reference `splitmix64.c` for seed 0 (widely
    /// published vector).
    #[test]
    fn splitmix64_reference_vector() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    /// First outputs of the reference `xoshiro256starstar.c` for the state
    /// `[1, 2, 3, 4]`, verified by hand-executing the reference update.
    #[test]
    fn xoshiro256starstar_reference_vector() {
        let mut x = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        assert_eq!(x.next_u64(), 11520);
        assert_eq!(x.next_u64(), 0);
        assert_eq!(x.next_u64(), 1_509_978_240);
        assert_eq!(x.next_u64(), 1_215_971_899_390_074_240);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256StarStar::from_state([0; 4]);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(0xDEAD_BEEF);
        let mut b = Rng::new(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_both_ends() {
        let mut rng = Rng::new(1);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i32, 5);
            assert!((-3..5).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 4;
        }
        assert!(lo_seen && hi_seen, "10k draws should cover an 8-value range");
    }

    #[test]
    fn zero_draw_maps_to_low_bound() {
        assert_eq!(u32::from_draw(0, 7, 100), 7);
        assert_eq!(i64::from_draw(0, -50, 50), -50);
        assert_eq!(usize::from_draw(0, 1, 2), 1);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(99);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Rng::new(5);
        let items = [1u32, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(*rng.choose(&items).unwrap());
        }
        assert_eq!(seen.len(), 4);
        assert!(rng.choose::<u32>(&[]).is_none());
    }
}
