//! The testkit tested with itself: shrinker convergence to minimal
//! counterexamples, deterministic case sequences, and seed replay via the
//! `COHESION_PROP_SEED` environment variable.

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;

use cohesion_testkit::prop::{self, Strategy, SEED_ENV};

/// The shrinker must converge to the *boundary* counterexample of a
/// threshold property, not just any failing value.
#[test]
fn shrinker_converges_to_minimal_scalar() {
    let failure = prop::Runner::new("shrinker_converges_to_minimal_scalar")
        .run_result(&prop::range(0u64..1000), |v| assert!(v < 42))
        .expect_err("the property is falsifiable");
    assert_eq!(failure.minimal, "42", "greedy shrink must reach the boundary");
    assert!(failure.message.contains("v < 42"));
}

/// Vector inputs shrink in both length and element values.
#[test]
fn shrinker_converges_to_minimal_vector() {
    let failure = prop::Runner::new("shrinker_converges_to_minimal_vector")
        .run_result(&prop::vec_of(prop::range(0u32..100), 0..10), |v| {
            assert!(v.len() < 3, "vectors must stay short");
        })
        .expect_err("the property is falsifiable");
    assert_eq!(
        failure.minimal, "[0, 0, 0]",
        "minimal counterexample is the shortest failing vector of minimal elements"
    );
}

/// Shrinking works *through* composition (`one_of` + `map`), because it
/// operates on the draw stream rather than on values.
#[test]
fn shrinker_shrinks_through_one_of_and_map() {
    let strategy = prop::one_of(vec![
        prop::range(0u32..10).boxed(),
        prop::range(100u32..200).boxed(),
    ])
    .map(|x| x * 2);
    let failure = prop::Runner::new("shrinker_shrinks_through_one_of_and_map")
        .run_result(&strategy, |v| assert!(v < 250))
        .expect_err("the second branch can exceed the threshold");
    assert_eq!(failure.minimal, "250");
}

/// The same explicit seed replays the exact same case sequence.
#[test]
fn explicit_seed_replays_identical_case_sequence() {
    let collect = |seed: u64| {
        let seen = RefCell::new(Vec::new());
        prop::Runner::new("explicit_seed_replay")
            .seed(seed)
            .run(&(prop::range(0u64..1_000_000), prop::bools()), |v| {
                seen.borrow_mut().push(v);
            });
        seen.into_inner()
    };
    let a = collect(12345);
    let b = collect(12345);
    let c = collect(54321);
    assert_eq!(a.len(), prop::DEFAULT_CASES as usize);
    assert_eq!(a, b, "same seed ⇒ same cases");
    assert_ne!(a, c, "different seed ⇒ different cases");
}

/// Without a seed, the case sequence is still deterministic (derived from
/// the property name) — reruns of a green suite are bit-identical.
#[test]
fn default_seed_is_deterministic_per_property() {
    let collect = |name: &str| {
        let seen = RefCell::new(Vec::new());
        prop::Runner::new(name).run(&prop::range(0u64..1_000_000), |v| {
            seen.borrow_mut().push(v);
        });
        seen.into_inner()
    };
    assert_eq!(collect("prop_a"), collect("prop_a"));
    assert_ne!(collect("prop_a"), collect("prop_b"));
}

/// `COHESION_PROP_SEED` reproduces the same case sequence as an explicit
/// seed, and a failure report carries the replay line.
#[test]
fn env_seed_replay_and_failure_report() {
    // Env-var path vs explicit-seed path.
    let seen_env = RefCell::new(Vec::new());
    std::env::set_var(SEED_ENV, "424242");
    prop::Runner::new("env_seed_replay").run(&prop::range(0u32..10_000), |v| {
        seen_env.borrow_mut().push(v);
    });
    std::env::remove_var(SEED_ENV);
    let seen_explicit = RefCell::new(Vec::new());
    prop::Runner::new("env_seed_replay")
        .seed(424242)
        .run(&prop::range(0u32..10_000), |v| {
            seen_explicit.borrow_mut().push(v);
        });
    assert_eq!(
        seen_env.into_inner(),
        seen_explicit.into_inner(),
        "{SEED_ENV} must reproduce the explicit-seed sequence"
    );

    // The panicking entry point names the seed so the line can be pasted.
    let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
        prop::Runner::new("always_fails")
            .seed(7)
            .run(&prop::range(0u32..10), |_| panic!("boom"));
    }))
    .expect_err("property always fails");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic message is a string");
    assert!(
        msg.contains(&format!("{SEED_ENV}=7")),
        "failure must print the replay seed, got: {msg}"
    );
}

/// Discarded cases (via `assume`) do not count toward the case budget and
/// do not disturb determinism.
#[test]
fn assume_preserves_determinism() {
    let collect = || {
        let seen = RefCell::new(Vec::new());
        prop::Runner::new("assume_determinism")
            .seed(99)
            .cases(100)
            .run(&prop::range(0u32..1000), |v| {
                prop::assume(v % 3 == 0);
                seen.borrow_mut().push(v);
            });
        seen.into_inner()
    };
    let a = collect();
    assert_eq!(a.len(), 100, "exactly `cases` non-discarded executions");
    assert!(a.iter().all(|v| v % 3 == 0));
    assert_eq!(a, collect());
}
