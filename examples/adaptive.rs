//! Adaptive coherence-domain remapping — §4.2's future work, running.
//!
//! A workload whose sharing pattern *changes over time*: for the first
//! phases, tasks stream over a working set (read-shared, coarse-grained —
//! SWcc's home turf); then the same memory becomes migratory
//! read-modify-write state bouncing between clusters (HWcc's home turf);
//! then back. A static domain choice loses somewhere; the
//! [`cohesion::adaptive::AdaptiveRemapper`] watches the per-phase profile
//! feedback and moves the region when the current domain's overhead climbs.
//! The policy here is deliberately simple — the demonstration is the
//! *mechanism* (machine profiling → runtime advice → Table 2 region calls →
//! the §3.6 transition engine), which is exactly the substrate the paper's
//! future-work sentence asks for.
//!
//! ```sh
//! cargo run --release --example adaptive
//! ```

use cohesion::adaptive::{AdaptiveRemapper, RemapPolicy};
use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::profile::RegionFeedback;
use cohesion::run::{run_workload, Workload};
use cohesion_mem::addr::Addr;
use cohesion_mem::mainmem::MainMemory;
use cohesion_protocol::region::Domain;
use cohesion_runtime::api::{CohesionApi, RuntimeError};
use cohesion_runtime::task::{Phase, TaskBuilder};

const BLOCKS: [(&str, u32); 4] = [
    ("stream", 3),
    ("migrate", 3),
    ("stream", 3),
    ("migrate", 3),
];

/// `fixed`: `None` = adaptive, `Some(domain)` = static choice.
struct Shifting {
    words: u32,
    data: Addr,
    phase: u32,
    fixed: Option<Domain>,
    remapper: Option<AdaptiveRemapper>,
    pending: Option<Domain>,
    switches: u32,
}

impl Shifting {
    fn new(words: u32, fixed: Option<Domain>) -> Self {
        Shifting {
            words,
            data: Addr(0),
            phase: 0,
            fixed,
            remapper: None,
            pending: None,
            switches: 0,
        }
    }

    fn block_of(phase: u32) -> Option<&'static str> {
        let mut p = phase;
        for (kind, len) in BLOCKS {
            if p < len {
                return Some(kind);
            }
            p -= len;
        }
        None
    }
}

impl Workload for Shifting {
    fn name(&self) -> &'static str {
        "shifting-sharing"
    }

    fn setup(
        &mut self,
        api: &mut CohesionApi,
        golden: &mut MainMemory,
    ) -> Result<(), RuntimeError> {
        self.data = api.coh_malloc(self.words * 4)?; // born SWcc
        for i in 0..self.words {
            golden.write_word(Addr(self.data.0 + 4 * i), i);
        }
        match self.fixed {
            Some(Domain::HWcc) => api.coh_hwcc_region(self.data, self.words * 4)?,
            Some(Domain::SWcc) | None => {}
        }
        if self.fixed.is_none() {
            self.remapper = Some(AdaptiveRemapper::new(
                self.data,
                self.words * 4,
                Domain::SWcc,
                RemapPolicy::default(),
            ));
        }
        Ok(())
    }

    fn profile_regions(&self) -> Vec<(Addr, u32)> {
        if self.fixed.is_none() {
            vec![(self.data, self.words * 4)]
        } else {
            Vec::new()
        }
    }

    fn observe(&mut self, feedback: &[RegionFeedback]) {
        if let Some(r) = self.remapper.as_mut() {
            if let Some(to) = r.advise(feedback) {
                self.pending = Some(to);
                self.switches += 1;
            }
        }
    }

    fn next_phase(&mut self, api: &mut CohesionApi, golden: &mut MainMemory) -> Option<Phase> {
        let kind = Self::block_of(self.phase)?;
        self.phase += 1;
        if let Some(to) = self.pending.take() {
            match to {
                Domain::HWcc => api.coh_hwcc_region(self.data, self.words * 4).ok()?,
                Domain::SWcc => api.coh_swcc_region(self.data, self.words * 4).ok()?,
            }
        }
        let is_swcc = |api: &CohesionApi, a: Addr| api.software_domain(a) == Domain::SWcc;
        let mut p = Phase::new(if kind == "stream" { "stream" } else { "migrate" });
        let tasks = 16u32;
        let per = self.words / tasks;
        for t in 0..tasks {
            let mut b = TaskBuilder::new(6);
            // Rotate block ownership so data moves between clusters.
            let owner = (t + self.phase) % tasks;
            let start = owner * per;
            match kind {
                "stream" => {
                    // Read the whole block, write one summary word.
                    let mut acc = 0u32;
                    for i in start..start + per {
                        let a = Addr(self.data.0 + 4 * i);
                        acc = acc.wrapping_add(golden.read_word(a));
                        b.load(a, golden.read_word(a)).compute(1);
                    }
                    let out = Addr(self.data.0 + 4 * start);
                    let old = golden.read_word(out);
                    let v = old.wrapping_add(acc | 1);
                    golden.write_word(out, v);
                    b.store(out, v);
                }
                _ => {
                    // Migratory RMW over the whole block.
                    for i in start..start + per {
                        let a = Addr(self.data.0 + 4 * i);
                        let old = golden.read_word(a);
                        let v = old.wrapping_mul(5).wrapping_add(3);
                        golden.write_word(a, v);
                        b.load(a, old).compute(2).store(a, v);
                    }
                }
            }
            b.flush_written(|l| is_swcc(api, l.base()));
            b.invalidate_read(|l| is_swcc(api, l.base()));
            p.tasks.push(b.build());
        }
        Some(p)
    }

    fn verify(&self, mem: &MainMemory) -> Result<(), String> {
        // Functional replay would duplicate next_phase; the golden values
        // were written incrementally, so spot-check determinism: word 17's
        // value must be nonzero and stable across reruns (the executor's
        // verified loads already checked every read).
        if mem.read_word(Addr(self.data.0 + 4 * 17)) == 0 && self.phase > 0 {
            return Err("word 17 lost its updates".into());
        }
        Ok(())
    }
}

fn main() {
    let cfg = MachineConfig::scaled(64, DesignPoint::cohesion(16 * 1024, 128));
    println!("shifting-sharing workload: 2x (3 streaming phases + 3 migratory phases)");
    for (regime, words) in [("16 KB working set (cache-resident)", 4096u32),
                            ("1 MB working set (streams through DRAM)", 262_144)] {
        println!("\n== {regime} ==\n");
        println!(
            "{:<22} {:>10} {:>12} {:>9} {:>9} {:>9}",
            "policy", "cycles", "messages", "flushes", "probes", "switches"
        );
        for (label, fixed) in [
            ("static SWcc", Some(Domain::SWcc)),
            ("static HWcc", Some(Domain::HWcc)),
            ("adaptive (profile-led)", None),
        ] {
            let mut wl = Shifting::new(words, fixed);
            let r = run_workload(&cfg, &mut wl).expect("verifies");
            use cohesion_sim::msg::MessageClass::*;
            println!(
                "{:<22} {:>10} {:>12} {:>9} {:>9} {:>9}",
                label,
                r.cycles,
                r.total_messages(),
                r.messages.count(SoftwareFlush),
                r.messages.count(ProbeResponse),
                wl.switches,
            );
        }
    }
    println!(
        "\nneither regime is announced in advance. the profile-led remapper reacts to\n\
         measured overheads alone and stays within ~15% of whichever static choice an\n\
         oracle would have made — switching domains when flush overhead climbs in the\n\
         cache-resident regime, staying put when everything streams through DRAM and\n\
         domain choice barely matters. the *mechanism* is the point: per-region\n\
         profiling feeding Table 2 calls feeding the \u{a7}3.6 transition engine — the\n\
         substrate for the \"more complicated optimization strategies\" \u{a7}4.2\n\
         defers; better policies drop in via RemapPolicy."
    );
}
