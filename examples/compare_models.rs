//! Compare all six §4 design points on one kernel — a miniature Figure 10.
//!
//! ```sh
//! cargo run --release --example compare_models [kernel]
//! ```
//!
//! `kernel` defaults to `stencil`; any of
//! `cg dmm gjk heat kmeans mri sobel stencil` works. The six simulations
//! run concurrently on the testkit worker pool (`COHESION_JOBS` overrides
//! the width); rows print in fixed order regardless of worker count.

use cohesion::config::DesignPoint;
use cohesion::config::MachineConfig;
use cohesion::run::run_workload;
use cohesion_kernels::{kernel_by_name, Scale, KERNEL_NAMES};
use cohesion_testkit::pool;

fn main() {
    let kernel = std::env::args().nth(1).unwrap_or_else(|| "stencil".into());
    assert!(
        KERNEL_NAMES.contains(&kernel.as_str()),
        "unknown kernel {kernel}; pick one of {KERNEL_NAMES:?}"
    );

    let e = 16 * 1024;
    let points = [
        ("Cohesion", DesignPoint::cohesion(e, 128)),
        ("Cohesion(Dir4B)", DesignPoint::cohesion_dir4b(e, 128)),
        ("SWcc", DesignPoint::swcc()),
        ("HWccIdeal", DesignPoint::hwcc_ideal()),
        ("HWccReal", DesignPoint::hwcc_real(e, 128)),
        ("HWcc(Dir4B)", DesignPoint::hwcc_dir4b(e, 128)),
    ];

    println!("kernel: {kernel} (128 cores, small scale)\n");
    println!(
        "{:<16} {:>12} {:>9} {:>12} {:>10} {:>10}",
        "config", "cycles", "runtime", "messages", "dir avg", "dir evict"
    );

    let reports = pool::run_jobs(pool::default_jobs(), points.to_vec(), |(_, dp)| {
        let cfg = MachineConfig::scaled(128, dp);
        let mut wl = kernel_by_name(&kernel, Scale::Small);
        run_workload(&cfg, wl.as_mut()).expect("runs and verifies")
    });

    let baseline_cycles = reports[0].cycles;
    for ((name, _), report) in points.iter().zip(&reports) {
        println!(
            "{:<16} {:>12} {:>8.2}x {:>12} {:>10.0} {:>10}",
            name,
            report.cycles,
            report.cycles as f64 / baseline_cycles as f64,
            report.total_messages(),
            report.dir_avg_entries,
            report.dir_evictions,
        );
    }
    println!("\nruntime is normalized to Cohesion (full-map sparse directory),");
    println!("matching the y-axis of Figure 10.");
}
