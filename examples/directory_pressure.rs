//! Directory-capacity robustness — a miniature Figure 9 for one kernel.
//!
//! Sweeps the per-bank directory size and prints the slowdown of pure HWcc
//! and of Cohesion, each normalized to its own infinite-directory run. The
//! paper's headline robustness claim is visible directly: HWcc falls off a
//! cliff as the directory shrinks below the working set, Cohesion barely
//! moves because most lines never enter the directory.
//!
//! ```sh
//! cargo run --release --example directory_pressure [kernel]
//! ```

use cohesion::config::{DesignPoint, DirectoryVariant, MachineConfig};
use cohesion::run::run_workload;
use cohesion_kernels::{kernel_by_name, Scale, KERNEL_NAMES};
use cohesion_runtime::api::CohMode;

fn run_at(mode: CohMode, directory: DirectoryVariant, kernel: &str) -> (u64, u64) {
    let cfg = MachineConfig::scaled(64, DesignPoint { mode, directory });
    let mut wl = kernel_by_name(kernel, Scale::Small);
    let r = run_workload(&cfg, wl.as_mut()).expect("runs and verifies");
    (r.cycles, r.dir_evictions)
}

fn main() {
    let kernel = std::env::args().nth(1).unwrap_or_else(|| "sobel".into());
    assert!(
        KERNEL_NAMES.contains(&kernel.as_str()),
        "unknown kernel {kernel}; pick one of {KERNEL_NAMES:?}"
    );
    println!("kernel: {kernel} (64 cores, small scale)\n");
    println!(
        "{:>14} {:>14} {:>16} {:>14} {:>16}",
        "entries/bank", "HWcc slowdown", "HWcc evictions", "Coh. slowdown", "Coh. evictions"
    );

    let (hw_base, _) = run_at(CohMode::HWcc, DirectoryVariant::FullMapInfinite, &kernel);
    let (coh_base, _) = run_at(CohMode::Cohesion, DirectoryVariant::FullMapInfinite, &kernel);

    for entries in [256u32, 512, 1024, 2048, 4096, 8192, 16384] {
        let v = DirectoryVariant::FullyAssociative { entries };
        let (hw, hw_ev) = run_at(CohMode::HWcc, v, &kernel);
        let (coh, coh_ev) = run_at(CohMode::Cohesion, v, &kernel);
        println!(
            "{:>14} {:>13.2}x {:>16} {:>13.2}x {:>16}",
            entries,
            hw as f64 / hw_base as f64,
            hw_ev,
            coh as f64 / coh_base as f64,
            coh_ev,
        );
    }
    println!("\nslowdowns are normalized per-mode to an infinite directory (Figure 9a/9b).");
}
