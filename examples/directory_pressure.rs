//! Directory-capacity robustness — a miniature Figure 9 for one kernel.
//!
//! Sweeps the per-bank directory size and prints the slowdown of pure HWcc
//! and of Cohesion, each normalized to its own infinite-directory run. The
//! paper's headline robustness claim is visible directly: HWcc falls off a
//! cliff as the directory shrinks below the working set, Cohesion barely
//! moves because most lines never enter the directory.
//!
//! All sixteen runs (two baselines + 7 sizes × 2 modes) execute
//! concurrently on the testkit worker pool (`COHESION_JOBS` overrides the
//! width); rows print in fixed order regardless of worker count.
//!
//! ```sh
//! cargo run --release --example directory_pressure [kernel]
//! ```

use cohesion::config::{DesignPoint, DirectoryVariant, MachineConfig};
use cohesion::run::run_workload;
use cohesion_kernels::{kernel_by_name, Scale, KERNEL_NAMES};
use cohesion_runtime::api::CohMode;
use cohesion_testkit::pool;

const SIZES: [u32; 7] = [256, 512, 1024, 2048, 4096, 8192, 16384];

fn main() {
    let kernel = std::env::args().nth(1).unwrap_or_else(|| "sobel".into());
    assert!(
        KERNEL_NAMES.contains(&kernel.as_str()),
        "unknown kernel {kernel}; pick one of {KERNEL_NAMES:?}"
    );
    println!("kernel: {kernel} (64 cores, small scale)\n");
    println!(
        "{:>14} {:>14} {:>16} {:>14} {:>16}",
        "entries/bank", "HWcc slowdown", "HWcc evictions", "Coh. slowdown", "Coh. evictions"
    );

    // Job list: the two infinite-directory baselines, then (HWcc, Cohesion)
    // per swept size — flat, so every run parallelizes.
    let mut jobs: Vec<(CohMode, DirectoryVariant)> = vec![
        (CohMode::HWcc, DirectoryVariant::FullMapInfinite),
        (CohMode::Cohesion, DirectoryVariant::FullMapInfinite),
    ];
    for entries in SIZES {
        let v = DirectoryVariant::FullyAssociative { entries };
        jobs.push((CohMode::HWcc, v));
        jobs.push((CohMode::Cohesion, v));
    }
    let results = pool::run_jobs(pool::default_jobs(), jobs, |(mode, directory)| {
        let cfg = MachineConfig::scaled(64, DesignPoint { mode, directory });
        let mut wl = kernel_by_name(&kernel, Scale::Small);
        let r = run_workload(&cfg, wl.as_mut()).expect("runs and verifies");
        (r.cycles, r.dir_evictions)
    });

    let (hw_base, _) = results[0];
    let (coh_base, _) = results[1];
    for (i, entries) in SIZES.iter().enumerate() {
        let (hw, hw_ev) = results[2 + 2 * i];
        let (coh, coh_ev) = results[3 + 2 * i];
        println!(
            "{:>14} {:>13.2}x {:>16} {:>13.2}x {:>16}",
            entries,
            hw as f64 / hw_base as f64,
            hw_ev,
            coh as f64 / coh_base as f64,
            coh_ev,
        );
    }
    println!("\nslowdowns are normalized per-mode to an infinite directory (Figure 9a/9b).");
}
