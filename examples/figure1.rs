//! Figure 1, live: watch cache lines migrate between coherence domains
//! over time, without copies, in a single address space.
//!
//! Runs a small program whose data starts SWcc (born on the incoherent
//! heap), partially migrates to HWcc mid-program, and partially returns —
//! printing the fine-grain region table's view of the address range after
//! every phase, in the spirit of the paper's Figure 1 timeline.
//!
//! ```sh
//! cargo run --release --example figure1
//! ```

use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::run::{run_workload, Workload};
use cohesion_mem::addr::Addr;
use cohesion_mem::mainmem::MainMemory;
use cohesion_runtime::api::{CohesionApi, RuntimeError};
use cohesion_runtime::task::{Phase, TaskBuilder};

const LINES: u32 = 16;

struct Timeline {
    data: Addr,
    phase: u32,
}

impl Workload for Timeline {
    fn name(&self) -> &'static str {
        "figure1"
    }

    fn setup(
        &mut self,
        api: &mut CohesionApi,
        golden: &mut MainMemory,
    ) -> Result<(), RuntimeError> {
        self.data = api.coh_malloc(LINES * 32)?;
        for i in 0..LINES * 8 {
            golden.write_word(Addr(self.data.0 + 4 * i), i);
        }
        Ok(())
    }

    fn next_phase(&mut self, api: &mut CohesionApi, golden: &mut MainMemory) -> Option<Phase> {
        let phase = self.phase;
        self.phase += 1;
        // Domain choreography, one step per phase (cf. Figure 1's t0..t4):
        match phase {
            0 => {} // everything SWcc, as allocated
            1 => {
                // Lines 4..12 become hardware-coherent.
                api.coh_hwcc_region(Addr(self.data.0 + 4 * 32), 8 * 32).ok()?;
            }
            2 => {
                // Lines 0..4 join them.
                api.coh_hwcc_region(self.data, 4 * 32).ok()?;
            }
            3 => {
                // Lines 4..8 return to software management.
                api.coh_swcc_region(Addr(self.data.0 + 4 * 32), 4 * 32).ok()?;
            }
            4 => {}
            _ => return None,
        }
        // Each phase, four tasks each own a quarter of the range (rotating
        // ownership each phase, so lines migrate between clusters too) and
        // increment every word they own. Domain-appropriate coherence
        // actions are emitted automatically.
        let mut p = Phase::new("touch");
        let quarter = LINES * 8 / 4;
        for t in 0..4u32 {
            let mut b = TaskBuilder::new(4);
            let start = ((t + phase) % 4) * quarter;
            for i in start..start + quarter {
                let a = Addr(self.data.0 + 4 * i);
                let v = golden.read_word(a).wrapping_add(1);
                golden.write_word(a, v);
                b.load(a, v.wrapping_sub(1)).store(a, v);
            }
            b.flush_written(|l| api.software_domain(l.base()) == cohesion_protocol::region::Domain::SWcc);
            b.invalidate_read(|l| api.software_domain(l.base()) == cohesion_protocol::region::Domain::SWcc);
            p.tasks.push(b.build());
        }
        Some(p)
    }

    fn verify(&self, mem: &MainMemory) -> Result<(), String> {
        // Every word was incremented five times (once per phase).
        for i in 0..LINES * 8 {
            let got = mem.read_word(Addr(self.data.0 + 4 * i));
            if got != i + 5 {
                return Err(format!("word {i}: {got} != {}", i + 5));
            }
        }
        Ok(())
    }
}

fn main() {
    // Print the table's view phase by phase by re-running the choreography
    // functionally (the simulated run below verifies the data survived it).
    println!("Figure 1: lines migrating between coherence domains (S = SWcc, H = HWcc)\n");
    println!("          line: 0123456789abcdef");
    let mut domains = ['S'; LINES as usize];
    let snapshots = [
        ("t0 (allocated)", vec![]),
        ("t1", vec![(4usize, 12usize, 'H')]),
        ("t2", vec![(0, 4, 'H')]),
        ("t3", vec![(4, 8, 'S')]),
        ("t4", vec![]),
    ];
    for (label, changes) in snapshots {
        for (lo, hi, d) in changes {
            for x in domains.iter_mut().take(hi).skip(lo) {
                *x = d;
            }
        }
        println!("{label:>14}: {}", domains.iter().collect::<String>());
    }

    let cfg = MachineConfig::scaled(32, DesignPoint::cohesion(16 * 1024, 128));
    let mut wl = Timeline {
        data: Addr(0),
        phase: 0,
    };
    let report = run_workload(&cfg, &mut wl).expect("runs and verifies");
    println!("\nsimulated on a 32-core Cohesion machine:");
    println!("  transitions: {} lines to HWcc, {} back to SWcc", report.transitions.1, report.transitions.0);
    println!("  cycles: {}, messages: {}", report.cycles, report.total_messages());
    println!("  verification: every word carries all five phases' updates —");
    println!("  the data never moved, only its coherence domain did.");
}
