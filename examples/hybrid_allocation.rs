//! The Table 2 API in action: a custom workload that allocates on both
//! heaps, produces data under SWcc, migrates it to HWcc with
//! `coh_HWcc_region` — no copies, same addresses — and consumes it through
//! the directory.
//!
//! ```sh
//! cargo run --release --example hybrid_allocation
//! ```

use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::run::{run_workload, Workload};
use cohesion_mem::addr::Addr;
use cohesion_mem::mainmem::MainMemory;
use cohesion_runtime::api::{CohesionApi, RuntimeError};
use cohesion_runtime::task::{Phase, TaskBuilder};

/// Phase 1: tasks build a table of squares in SWcc memory (explicit
/// flushes, no directory involvement). Between phases the runtime calls
/// `coh_HWcc_region` — the same physical lines become hardware-coherent.
/// Phase 2: tasks read the table through the directory with no software
/// coherence actions at all.
struct MigratingTable {
    entries: u32,
    table: Addr,
    phase: u32,
}

impl Workload for MigratingTable {
    fn name(&self) -> &'static str {
        "hybrid-allocation"
    }

    fn setup(
        &mut self,
        api: &mut CohesionApi,
        _golden: &mut MainMemory,
    ) -> Result<(), RuntimeError> {
        // coh_malloc: incoherent heap, born SWcc, may change domains later.
        self.table = api.coh_malloc(self.entries * 4)?;
        Ok(())
    }

    fn next_phase(&mut self, api: &mut CohesionApi, golden: &mut MainMemory) -> Option<Phase> {
        let phase = self.phase;
        self.phase += 1;
        let per_task = 64u32;
        match phase {
            0 => {
                let mut p = Phase::new("produce-swcc");
                let mut i = 0;
                while i < self.entries {
                    let hi = (i + per_task).min(self.entries);
                    let mut b = TaskBuilder::new(4);
                    for e in i..hi {
                        let addr = Addr(self.table.0 + 4 * e);
                        let v = e * e;
                        golden.write_word(addr, v);
                        b.store(addr, v).compute(2);
                    }
                    // SWcc epilogue: eagerly flush the produced lines.
                    b.flush_written(|_| true);
                    p.tasks.push(b.build());
                    i = hi;
                }
                Some(p)
            }
            1 => {
                // The migration: same addresses, no copy — the runtime flips
                // the fine-grain table bits and the directory runs the
                // Figure 7 transition protocol for any cached lines.
                api.coh_hwcc_region(self.table, self.entries * 4)
                    .expect("valid region");
                let mut p = Phase::new("consume-hwcc");
                let mut i = 0;
                while i < self.entries {
                    let hi = (i + per_task).min(self.entries);
                    let mut b = TaskBuilder::new(4);
                    for e in i..hi {
                        let addr = Addr(self.table.0 + 4 * e);
                        b.load(addr, golden.read_word(addr)).compute(1);
                    }
                    // No flushes, no invalidations: this data is HWcc now.
                    p.tasks.push(b.build());
                    i = hi;
                }
                Some(p)
            }
            _ => None,
        }
    }

    fn verify(&self, mem: &MainMemory) -> Result<(), String> {
        for e in 0..self.entries {
            let got = mem.read_word(Addr(self.table.0 + 4 * e));
            if got != e * e {
                return Err(format!("table[{e}] = {got}, expected {}", e * e));
            }
        }
        Ok(())
    }
}

fn main() {
    let cfg = MachineConfig::scaled(64, DesignPoint::cohesion(16 * 1024, 128));
    let mut wl = MigratingTable {
        entries: 4096,
        table: Addr(0),
        phase: 0,
    };
    let report = run_workload(&cfg, &mut wl).expect("runs and verifies");
    println!("migrated {} entries from SWcc to HWcc without copying", 4096);
    println!("lines transitioned to HWcc : {}", report.transitions.1);
    println!("total cycles               : {}", report.cycles);
    println!("L2->L3 messages            : {}", report.total_messages());
    for (class, count) in report.messages.iter() {
        if count > 0 {
            println!("  {:<28}: {count}", class.label());
        }
    }
    println!("verification               : passed");
}
