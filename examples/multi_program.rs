//! Multiprogramming with per-process region tables — §3.5's virtualization
//! sketch, running: two applications share one Cohesion machine, each with
//! its own address-space slice and its own fine-grain region table, while
//! the L3, directories, NoC, and DRAM are contended hardware.
//!
//! ```sh
//! cargo run --release --example multi_program
//! ```

use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::multi::run_workloads;
use cohesion_kernels::{kernel_by_name, Scale};

fn main() {
    let cfg = MachineConfig::scaled(128, DesignPoint::cohesion(16 * 1024, 128));
    let mut heat = kernel_by_name("heat", Scale::Tiny);
    let mut kmeans = kernel_by_name("kmeans", Scale::Tiny);

    println!("running heat and kmeans concurrently on one 128-core Cohesion machine");
    println!("(clusters space-partitioned; per-process region tables at distinct bases)\n");

    let reports =
        run_workloads(&cfg, vec![heat.as_mut(), kmeans.as_mut()]).expect("both verify");

    println!(
        "{:<8} {:>12} {:>8} {:>8} {:>12} {:>10} {:>10}",
        "job", "finished@", "phases", "tasks", "messages", "flushes", "atomics"
    );
    for r in &reports {
        use cohesion_sim::msg::MessageClass::*;
        println!(
            "{:<8} {:>12} {:>8} {:>8} {:>12} {:>10} {:>10}",
            r.kernel,
            r.finished_at,
            r.phases,
            r.tasks,
            r.messages.total(),
            r.messages.count(SoftwareFlush),
            r.messages.count(UncachedAtomic),
        );
    }
    println!("\nboth jobs' final memory images verified against their golden results;");
    println!("each job's coh_malloc data was born SWcc in its own table, and kmeans'");
    println!("accumulators lived under HWcc — on shared directory hardware.");
}
