//! Quickstart: build a Cohesion machine, run one kernel, read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::run::run_workload;
use cohesion_kernels::heat::Heat;
use cohesion_kernels::Scale;

fn main() {
    // A 128-core machine (16 clusters, 8 L3 banks — the full Table 3
    // organization scaled down proportionally), running the hybrid memory
    // model on the realistic 16K-entry, 128-way sparse directory.
    let cfg = MachineConfig::scaled(128, DesignPoint::cohesion(16 * 1024, 128));

    // The 2-D Jacobi kernel: a barrier-synchronized task-queue program whose
    // results are verified against a functional golden computation.
    let mut kernel = Heat::new(Scale::Tiny);

    let report = run_workload(&cfg, &mut kernel).expect("kernel runs and verifies");

    println!("kernel          : {}", report.kernel);
    println!("cores           : {}", report.cores);
    println!("cycles          : {}", report.cycles);
    println!("phases          : {}", report.phases);
    println!("tasks           : {}", report.tasks);
    println!("trace ops       : {}", report.ops);
    println!("L2->L3 messages : {}", report.total_messages());
    for (class, count) in report.messages.iter() {
        if count > 0 {
            println!("  {:<28}: {count}", class.label());
        }
    }
    println!(
        "SWcc instr      : {} invalidations ({:.0}% useful), {} flushes ({:.0}% useful)",
        report.instr_stats.invalidations_issued,
        100.0 * report.instr_stats.invalidation_usefulness(),
        report.instr_stats.writebacks_issued,
        100.0 * report.instr_stats.writeback_usefulness(),
    );
    println!(
        "directory       : avg {:.0} entries, max {} (code/heap/stack {:.0}/{:.0}/{:.0})",
        report.dir_avg_entries,
        report.dir_max_entries,
        report.dir_avg_by_class[0],
        report.dir_avg_by_class[1],
        report.dir_avg_by_class[2],
    );
    println!(
        "transitions     : {} lines to SWcc, {} lines to HWcc",
        report.transitions.0, report.transitions.1
    );
    println!("verification    : passed (machine memory matches the golden result)");
}
