#![warn(missing_docs)]

//! Workspace-root package hosting the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) for the Cohesion reproduction.
//!
//! The actual library surface lives in the [`cohesion`] crate; this package
//! simply re-exports it so examples can `use cohesion_repro as _;` or depend
//! on `cohesion` directly.

pub use cohesion;
