//! Bit-determinism regression: two runs of the same workload under the
//! same `MachineConfig` must produce *identical* reports — not just the
//! same cycle count, but every counter. The golden-statistics tests and
//! the seed-replay workflow of the property suites both rest on this.

use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::report::RunReport;
use cohesion::run::run_workload;
use cohesion_kernels::{kernel_by_name, Scale};

fn run_once(kernel: &str, dp: DesignPoint) -> RunReport {
    let cfg = MachineConfig::scaled(16, dp);
    let mut wl = kernel_by_name(kernel, Scale::Tiny);
    run_workload(&cfg, wl.as_mut()).unwrap_or_else(|e| panic!("{kernel}: {e}"))
}

fn assert_identical(kernel: &str, mode: &str, a: &RunReport, b: &RunReport) {
    let ctx = format!("{kernel}/{mode}");
    assert_eq!(a.cycles, b.cycles, "{ctx}: cycle counts diverged");
    assert_eq!(a.messages, b.messages, "{ctx}: message counters diverged");
    assert_eq!(
        a.total_messages(),
        b.total_messages(),
        "{ctx}: total messages diverged"
    );
    assert_eq!(a.phases, b.phases, "{ctx}: phases diverged");
    assert_eq!(a.tasks, b.tasks, "{ctx}: tasks diverged");
    assert_eq!(a.ops, b.ops, "{ctx}: ops diverged");
    assert_eq!(a.transitions, b.transitions, "{ctx}: transitions diverged");
    assert_eq!(a.dram, b.dram, "{ctx}: DRAM accesses diverged");
    assert_eq!(a.l2, b.l2, "{ctx}: L2 stats diverged");
    assert_eq!(a.l3, b.l3, "{ctx}: L3 stats diverged");
    assert_eq!(a.noc, b.noc, "{ctx}: NoC stats diverged");
    assert_eq!(a.dir_insertions, b.dir_insertions, "{ctx}: dir insertions diverged");
    assert_eq!(a.dir_evictions, b.dir_evictions, "{ctx}: dir evictions diverged");
    assert_eq!(a.races, b.races, "{ctx}: race counts diverged");
}

#[test]
fn repeated_runs_are_bit_identical() {
    let kernels = ["heat", "kmeans", "gjk"];
    let points = [
        ("SWcc", DesignPoint::swcc()),
        ("HWccIdeal", DesignPoint::hwcc_ideal()),
        ("Cohesion", DesignPoint::cohesion(1024, 128)),
    ];
    for kernel in kernels {
        for (mode, dp) in points {
            let a = run_once(kernel, dp);
            let b = run_once(kernel, dp);
            assert_identical(kernel, mode, &a, &b);
        }
    }
}
