//! Doc-link integrity: every relative markdown link in the top-level
//! docs and `docs/*.md` must point at a file (or directory) that
//! exists, so renames and deletions can't silently strand readers.
//! External (`http…`), `mailto:`, and pure-anchor links are skipped;
//! `#fragment` suffixes are stripped before the existence check.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The documentation set the checker walks.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md"), root.join("DESIGN.md")];
    let docs = root.join("docs");
    let entries = std::fs::read_dir(&docs).expect("docs/ directory exists");
    for entry in entries {
        let path = entry.expect("read docs/ entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files.sort();
    assert!(
        files.len() >= 7,
        "expected README, DESIGN, and at least five docs/*.md, found {files:?}"
    );
    files
}

/// Extracts inline markdown link targets: the `target` of `[text](target)`.
/// Fenced code blocks are skipped (their brackets are code, not links).
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                if let Some(close) = line[i + 2..].find(')') {
                    targets.push(line[i + 2..i + 2 + close].to_string());
                    i += 2 + close;
                    continue;
                }
            }
            i += 1;
        }
    }
    targets
}

#[test]
fn no_dangling_relative_links() {
    let mut dangling: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for file in doc_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let base = file.parent().expect("doc file has a parent directory");
        for target in link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            let path_part = target.split('#').next().unwrap_or(&target);
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            let resolved = base.join(path_part);
            if !resolved.exists() {
                dangling.push(format!(
                    "{}: [..]({target}) -> {}",
                    file.strip_prefix(repo_root()).unwrap_or(&file).display(),
                    resolved.display()
                ));
            }
        }
    }
    assert!(
        checked >= 10,
        "link scan found only {checked} relative links — scanner is likely broken"
    );
    assert!(
        dangling.is_empty(),
        "dangling doc links:\n  {}",
        dangling.join("\n  ")
    );
}

/// The docs index must list every guide that exists, and only guides
/// that exist (the existence half is covered above; this pins the
/// coverage half so a new guide can't be forgotten).
#[test]
fn docs_index_lists_every_guide() {
    let root = repo_root();
    let index = std::fs::read_to_string(root.join("docs/README.md")).expect("docs/README.md");
    for file in doc_files() {
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        if file.parent().unwrap() != root.join("docs") || name == "README.md" {
            continue;
        }
        assert!(
            index.contains(&format!("({name})")),
            "docs/README.md does not link {name}"
        );
    }
}

#[test]
fn top_level_readme_links_the_docs_index() {
    let text = std::fs::read_to_string(repo_root().join("README.md")).expect("README.md");
    assert!(
        text.contains("(docs/README.md)"),
        "README.md must link the documentation index"
    );
}

#[test]
fn scanner_parses_links_and_skips_fences() {
    let md = "see [a](docs/a.md) and [b](https://x/y#z)\n```\n[not](a-link.md)\n```\n[c](../up.md#frag)";
    assert_eq!(
        link_targets(md),
        vec!["docs/a.md", "https://x/y#z", "../up.md#frag"]
    );
}
