//! Golden-statistics regression tests: the simulator is bit-deterministic,
//! so these exact cycle and message counts (tiny scale, 16 cores) are
//! locked in. A diff here means the protocol or timing model changed —
//! fail loudly so the change is either intentional (regenerate with
//! `cargo run --release -p cohesion-bench --bin golden_gen`) or a bug.

use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::run::run_workload;
use cohesion_kernels::{kernel_by_name, Scale};

/// `(kernel, mode, cycles, total L2→L3 messages)` at Tiny scale, 16 cores.
const GOLDEN: &[(&str, &str, u64, u64)] = &[
    ("cg", "SWcc", 12214, 410),
    ("cg", "HWccIdeal", 9424, 312),
    ("cg", "Cohesion", 12426, 418),
    ("dmm", "SWcc", 5945, 156),
    ("dmm", "HWccIdeal", 6034, 180),
    ("dmm", "Cohesion", 6026, 156),
    ("gjk", "SWcc", 4674, 321),
    ("gjk", "HWccIdeal", 4580, 360),
    ("gjk", "Cohesion", 4350, 262),
    ("heat", "SWcc", 5450, 216),
    ("heat", "HWccIdeal", 4827, 208),
    ("heat", "Cohesion", 5425, 216),
    ("kmeans", "SWcc", 8784, 988),
    ("kmeans", "HWccIdeal", 8641, 1020),
    ("kmeans", "Cohesion", 6082, 300),
    ("mri", "SWcc", 8285, 96),
    ("mri", "HWccIdeal", 8332, 144),
    ("mri", "Cohesion", 8285, 96),
    ("sobel", "SWcc", 3125, 112),
    ("sobel", "HWccIdeal", 3116, 136),
    ("sobel", "Cohesion", 3137, 112),
    ("stencil", "SWcc", 6864, 356),
    ("stencil", "HWccIdeal", 6296, 340),
    ("stencil", "Cohesion", 6275, 292),
];

fn design_point(mode: &str) -> DesignPoint {
    match mode {
        "SWcc" => DesignPoint::swcc(),
        "HWccIdeal" => DesignPoint::hwcc_ideal(),
        "Cohesion" => DesignPoint::cohesion(1024, 128),
        other => panic!("unknown mode {other}"),
    }
}

#[test]
fn golden_statistics_are_stable() {
    let mut failures = Vec::new();
    for &(kernel, mode, cycles, messages) in GOLDEN {
        let cfg = MachineConfig::scaled(16, design_point(mode));
        let mut wl = kernel_by_name(kernel, Scale::Tiny);
        let r = run_workload(&cfg, wl.as_mut())
            .unwrap_or_else(|e| panic!("{kernel}/{mode}: {e}"));
        if r.cycles != cycles || r.total_messages() != messages {
            failures.push(format!(
                "    (\"{kernel}\", \"{mode}\", {}, {}), // was ({cycles}, {messages})",
                r.cycles,
                r.total_messages()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden statistics drifted — if intentional, update tests/golden_stats.rs:\n{}",
        failures.join("\n")
    );
}

/// The golden table itself must encode the qualitative claims.
#[test]
fn golden_table_encodes_the_paper_claims() {
    let get = |kernel: &str, mode: &str| {
        GOLDEN
            .iter()
            .find(|(k, m, _, _)| *k == kernel && *m == mode)
            .map(|&(_, _, c, msgs)| (c, msgs))
            .expect("present")
    };
    // kmeans: Cohesion far cheaper than SWcc in both time and messages.
    assert!(get("kmeans", "Cohesion").0 < get("kmeans", "SWcc").0);
    assert!(get("kmeans", "Cohesion").1 < get("kmeans", "SWcc").1 / 2);
    // Cohesion tracks SWcc's message counts on the partitioned kernels.
    for k in ["dmm", "heat", "sobel", "mri"] {
        assert_eq!(get(k, "Cohesion").1, get(k, "SWcc").1, "{k}");
    }
}
