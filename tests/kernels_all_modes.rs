//! Integration: every paper kernel × every §4 design point, end-to-end,
//! with golden-result verification. A coherence bug anywhere in the stack
//! (caches, NoC, directory, region tables, transition engine) fails here
//! as a wrong *answer*, not a suspicious statistic.

use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::run::run_workload;
use cohesion_kernels::{kernel_by_name, Scale, KERNEL_NAMES};

fn design_points() -> Vec<(&'static str, DesignPoint)> {
    vec![
        ("SWcc", DesignPoint::swcc()),
        ("HWccIdeal", DesignPoint::hwcc_ideal()),
        ("HWccReal", DesignPoint::hwcc_real(1024, 128)),
        ("HWccDir4B", DesignPoint::hwcc_dir4b(1024, 128)),
        ("Cohesion", DesignPoint::cohesion(1024, 128)),
        ("CohesionDir4B", DesignPoint::cohesion_dir4b(1024, 128)),
    ]
}

#[test]
fn all_kernels_verify_under_all_design_points() {
    for kernel in KERNEL_NAMES {
        for (name, dp) in design_points() {
            let cfg = MachineConfig::scaled(16, dp);
            let mut wl = kernel_by_name(kernel, Scale::Tiny);
            let report = run_workload(&cfg, wl.as_mut())
                .unwrap_or_else(|e| panic!("{kernel} under {name}: {e}"));
            assert!(report.cycles > 0, "{kernel}/{name}: time must pass");
            assert!(
                report.total_messages() > 0,
                "{kernel}/{name}: some traffic must flow"
            );
            assert_eq!(report.races, 0, "{kernel}/{name}: no SWcc races");
        }
    }
}

#[test]
fn all_kernels_verify_on_a_larger_machine() {
    // 64 cores, 8 clusters, 4 banks: a different geometry than the unit
    // tests use, catching any hidden 16-core assumptions.
    for kernel in KERNEL_NAMES {
        let cfg = MachineConfig::scaled(64, DesignPoint::cohesion(2048, 128));
        let mut wl = kernel_by_name(kernel, Scale::Tiny);
        run_workload(&cfg, wl.as_mut()).unwrap_or_else(|e| panic!("{kernel} @64 cores: {e}"));
    }
}

#[test]
fn hwcc_mode_never_issues_coherence_instructions() {
    for kernel in KERNEL_NAMES {
        let cfg = MachineConfig::scaled(16, DesignPoint::hwcc_ideal());
        let mut wl = kernel_by_name(kernel, Scale::Tiny);
        let report = run_workload(&cfg, wl.as_mut()).expect("runs");
        assert_eq!(
            report.instr_stats.invalidations_issued + report.instr_stats.writebacks_issued,
            0,
            "{kernel}: HWcc variants eliminate programmed coherence actions (§4.1)"
        );
    }
}

#[test]
fn swcc_mode_never_talks_to_a_directory() {
    for kernel in KERNEL_NAMES {
        let cfg = MachineConfig::scaled(16, DesignPoint::swcc());
        let mut wl = kernel_by_name(kernel, Scale::Tiny);
        let report = run_workload(&cfg, wl.as_mut()).expect("runs");
        assert_eq!(report.dir_insertions, 0, "{kernel}: no directory exists");
        use cohesion_sim::msg::MessageClass::*;
        assert_eq!(report.messages.count(WriteRequest), 0, "{kernel}");
        assert_eq!(report.messages.count(ReadRelease), 0, "{kernel}");
        assert_eq!(report.messages.count(ProbeResponse), 0, "{kernel}");
    }
}

#[test]
fn runs_are_bit_deterministic() {
    for kernel in ["heat", "kmeans", "gjk"] {
        let cfg = MachineConfig::scaled(16, DesignPoint::cohesion(1024, 128));
        let a = run_workload(&cfg, kernel_by_name(kernel, Scale::Tiny).as_mut()).expect("runs");
        let b = run_workload(&cfg, kernel_by_name(kernel, Scale::Tiny).as_mut()).expect("runs");
        assert_eq!(a.cycles, b.cycles, "{kernel}: cycle-identical reruns");
        assert_eq!(a.messages, b.messages, "{kernel}: message-identical reruns");
        assert_eq!(a.dir_max_entries, b.dir_max_entries, "{kernel}");
    }
}

#[test]
fn invariants_hold_after_every_phase() {
    // Directory inclusion + single-writer invariants, checked at every
    // barrier of every kernel under the hybrid model and under pure HWcc.
    for kernel in KERNEL_NAMES {
        for dp in [
            DesignPoint::hwcc_ideal(),
            DesignPoint::hwcc_real(1024, 128),
            DesignPoint::cohesion(1024, 128),
            DesignPoint::cohesion_dir4b(1024, 128),
        ] {
            let mut cfg = MachineConfig::scaled(16, dp);
            cfg.check_invariants = true;
            let mut wl = kernel_by_name(kernel, Scale::Tiny);
            run_workload(&cfg, wl.as_mut())
                .unwrap_or_else(|e| panic!("{kernel} under {dp:?}: {e}"));
        }
    }
}

/// Medium-scale smoke (minutes of CPU); run explicitly with `--ignored`.
#[test]
#[ignore = "medium scale takes minutes; run explicitly"]
fn medium_scale_verifies_under_cohesion() {
    for kernel in KERNEL_NAMES {
        let cfg = MachineConfig::scaled(128, DesignPoint::cohesion(16 * 1024, 128));
        let mut wl = kernel_by_name(kernel, Scale::Medium);
        let report = run_workload(&cfg, wl.as_mut())
            .unwrap_or_else(|e| panic!("{kernel} @ medium: {e}"));
        assert!(report.cycles > 0);
    }
}

#[test]
fn per_cluster_stealing_queues_verify_and_spread_contention() {
    use cohesion::config::TaskQueueModel;
    for kernel in KERNEL_NAMES {
        let mut cfg = MachineConfig::scaled(16, DesignPoint::cohesion(1024, 128));
        cfg.task_queue = TaskQueueModel::PerClusterStealing;
        let mut wl = kernel_by_name(kernel, Scale::Tiny);
        run_workload(&cfg, wl.as_mut())
            .unwrap_or_else(|e| panic!("{kernel} with stealing queues: {e}"));
    }
    // The scheduling-bound kernel benefits from decentralized queues.
    let mut global = MachineConfig::scaled(64, DesignPoint::swcc());
    global.task_queue = TaskQueueModel::Global;
    let g = run_workload(&global, kernel_by_name("gjk", Scale::Small).as_mut()).expect("runs");
    let mut steal = global;
    steal.task_queue = TaskQueueModel::PerClusterStealing;
    let s = run_workload(&steal, kernel_by_name("gjk", Scale::Small).as_mut()).expect("runs");
    assert!(
        s.cycles <= g.cycles,
        "per-cluster queues must not be slower on the dequeue-bound kernel \
         (stealing {} vs global {})",
        s.cycles,
        g.cycles
    );
}
