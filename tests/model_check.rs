//! Bounded model checking of the coherence protocol.
//!
//! Exhaustively explores every interleaving of protocol-relevant operations
//! on a single cache line from two clusters — loads, stores to two
//! different words, SWcc flush/invalidate instructions, an uncached atomic,
//! and both coherence-domain transitions — to a bounded depth, checking at
//! every reachable state:
//!
//! * the directory-inclusion invariants (`Machine::check_invariants`);
//! * value correctness: a drained copy of the machine agrees with a
//!   reference model of "last write wins" per word.
//!
//! Race-creating branches (a second cluster storing to a word already dirty
//! in another cluster's SWcc copy) are pruned, exactly as the SWcc contract
//! requires of software; everything else — including transitions landing on
//! dirty lines, multi-writer disjoint merges, and atomics recalling cached
//! data — is explored.
//!
//! The walk deduplicates: states are keyed on
//! [`Machine::line_state_digest`] (the machine's entire view of the line,
//! timing excluded) plus the reference-model fields, and a subtree is
//! re-entered only when it can now be explored deeper than before. Each
//! test reports how many transitions it checked and how many landed on
//! already-visited states. (For exhaustive graph exploration of the
//! protocol *types* themselves, see `crates/mc`.)

use std::collections::HashMap;

use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::machine::Machine;
use cohesion_mem::addr::Addr;
use cohesion_runtime::layout::{Layout, LayoutConfig};
use cohesion_runtime::task::AtomicKind;
use cohesion_sim::ids::{ClusterId, CoreId};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Load { cluster: u32, word: usize },
    Store { cluster: u32, word: usize },
    Flush { cluster: u32 },
    Invalidate { cluster: u32 },
    Atomic { word: usize },
    ToSwcc,
    ToHwcc,
}

const OPS: &[Op] = &[
    Op::Load { cluster: 0, word: 0 },
    Op::Load { cluster: 1, word: 0 },
    Op::Store { cluster: 0, word: 0 },
    Op::Store { cluster: 1, word: 4 },
    Op::Flush { cluster: 0 },
    Op::Invalidate { cluster: 1 },
    Op::Atomic { word: 0 },
    Op::ToSwcc,
    Op::ToHwcc,
];

#[derive(Clone)]
struct State {
    machine: Machine,
    /// Reference values per word of the line.
    reference: [u32; 8],
    /// Which cluster holds un-flushed SWcc dirt per word (race pruning).
    sw_dirty_by: [Option<u32>; 8],
    /// Whether a cluster may hold a *stale* cached copy. Under the SWcc
    /// contract a consumer must invalidate before reading; loads by a
    /// maybe-stale cluster execute but are not value-asserted. Staleness
    /// legally survives a SWcc⇒HWcc transition — §3.6: the system can
    /// always force the transition "but the data values may not be safe".
    maybe_stale: [bool; 2],
    t: u64,
    next_value: u32,
}

/// Dedup key: the machine's full view of the line under test (and of the
/// fine-table line governing it), plus every reference-model field that
/// steers pruning or value assertions. `t` is deliberately excluded — it
/// differs along every path but changes only timing, never values or
/// protocol state (and with one line per set, never an eviction).
#[derive(Hash, PartialEq, Eq)]
struct Key {
    digest: u64,
    reference: [u32; 8],
    sw_dirty_by: [Option<u32>; 8],
    stale_mask: u8,
    next_value: u32,
}

fn stale_mask(stale: &[bool]) -> u8 {
    stale
        .iter()
        .enumerate()
        .fold(0, |m, (i, &s)| m | ((s as u8) << i))
}

/// Exploration counters: `checked` transitions applied and invariant- and
/// value-checked; `deduped` of those landed on an already-visited state
/// with no new depth to give and were not re-expanded.
#[derive(Default)]
struct Counts {
    checked: u64,
    deduped: u64,
}

fn small_machine(dp: DesignPoint) -> Machine {
    let mut cfg = MachineConfig::scaled(16, dp);
    cfg.l3_total_bytes = 128 * 1024; // keep clones cheap
    let layout = Layout::new(&LayoutConfig::new(16));
    let mut m = Machine::new(cfg, layout);
    m.boot();
    m
}

fn line_base(m: &Machine) -> Addr {
    m.layout().incoherent_heap.start
}

/// Applies `op`; returns `false` if the branch is pruned (software would
/// not issue it).
fn apply(state: &mut State, op: Op) -> bool {
    let base = line_base(&state.machine);
    let line = base.line();
    let m = &mut state.machine;
    let core = |c: u32| CoreId(c * 8); // first core of each cluster
    match op {
        Op::Load { cluster, word } => {
            // A load of a word dirty in the *other* cluster's SWcc copy is
            // the race the contract forbids.
            if let Some(owner) = state.sw_dirty_by[word] {
                if owner != cluster {
                    return false;
                }
            }
            let (t2, v) = m.load(core(cluster), base.offset(4 * word as u32), state.t);
            if !state.maybe_stale[cluster as usize] {
                assert_eq!(
                    v, state.reference[word],
                    "load of word {word} by cluster {cluster} saw a stale value"
                );
            }
            state.t = t2 + 1;
        }
        Op::Store { cluster, word } => {
            if let Some(owner) = state.sw_dirty_by[word] {
                if owner != cluster {
                    return false; // would be a 5b race
                }
            }
            state.next_value += 1;
            let v = state.next_value;
            let swcc = m.domain_of(line) == cohesion_protocol::region::Domain::SWcc;
            let t2 = m.store(core(cluster), base.offset(4 * word as u32), v, state.t);
            state.reference[word] = v;
            if swcc {
                // SWcc: other clusters' cached copies are now outdated
                // until they invalidate.
                state.sw_dirty_by[word] = Some(cluster);
                state.maybe_stale[1 - cluster as usize] = true;
            } else {
                // HWcc: ownership probes invalidated every other copy, so
                // *they* will refetch current data — but if this cluster's
                // own copy carried stale words into the HWcc domain
                // (§3.6: "the data values may not be safe"), upgrading it
                // does not clean them.
                state.maybe_stale[1 - cluster as usize] = false;
            }
            state.t = t2 + 1;
        }
        Op::Flush { cluster } => {
            let t2 = m.flush(core(cluster), line, state.t);
            for w in 0..8 {
                if state.sw_dirty_by[w] == Some(cluster) {
                    state.sw_dirty_by[w] = None;
                }
            }
            state.t = t2 + 1;
        }
        Op::Invalidate { cluster } => {
            // Software never invalidates its own un-flushed dirt (that
            // would discard writes the reference model keeps).
            if state.sw_dirty_by.contains(&Some(cluster)) {
                return false;
            }
            let swcc = m.domain_of(line) == cohesion_protocol::region::Domain::SWcc;
            let t2 = m.invalidate(core(cluster), line, state.t);
            if swcc {
                // The stale copy (if any) is gone; the next load refetches.
                state.maybe_stale[cluster as usize] = false;
            }
            state.t = t2 + 1;
        }
        Op::Atomic { word } => {
            // An atomic to a word with outstanding SWcc dirt is racy.
            if state.sw_dirty_by[word].is_some() {
                return false;
            }
            state.next_value += 1;
            let swcc = m.domain_of(line) == cohesion_protocol::region::Domain::SWcc;
            let (t2, old) = m
                .atomic(
                    ClusterId(0),
                    base.offset(4 * word as u32),
                    AtomicKind::Add,
                    1,
                    state.t,
                )
                .expect("no table address involved");
            assert_eq!(old, state.reference[word], "atomic read a stale value");
            state.reference[word] = old.wrapping_add(1);
            if swcc {
                // The atomic mutated the L3 behind any cached SWcc copies.
                state.maybe_stale = [true; 2];
            } else {
                // The recall invalidated every cached copy.
                state.maybe_stale = [false; 2];
            }
            state.t = t2 + 1;
        }
        Op::ToSwcc | Op::ToHwcc => {
            // Domain transitions only exist under the hybrid model; under
            // the pure modes the table is inert and software would never
            // issue the update.
            if m.config().design.mode != cohesion_runtime::api::CohMode::Cohesion {
                return false;
            }
            // Transitions with outstanding multi-cluster dirt would be 5b
            // races; single-cluster dirt is legal (cases 3a/3b).
            let was = m.domain_of(line);
            let slot = m.fine_table().slot_of(line);
            let (kind, operand) = match op {
                Op::ToSwcc => (AtomicKind::Or, 1u32 << slot.bit),
                _ => (AtomicKind::And, !(1u32 << slot.bit)),
            };
            let (t2, _) = m
                .atomic(ClusterId(0), slot.word, kind, operand, state.t)
                .expect("races were pruned");
            // A same-domain "transition" changes no table bit and runs no
            // protocol action — the bookkeeping below only applies when
            // the domain actually flipped.
            match op {
                Op::ToHwcc if was == cohesion_protocol::region::Domain::SWcc => {
                    // The transition publishes all dirt (writeback or
                    // owner upgrade) — but stale *clean* copies become
                    // registered sharers of stale data (§3.6's "values may
                    // not be safe"), so staleness persists.
                    state.sw_dirty_by = [None; 8];
                }
                Op::ToSwcc if was == cohesion_protocol::region::Domain::HWcc => {
                    // HWcc->SWcc invalidates every sharer (cases 2a/3a):
                    // no cached copies remain, so nobody is stale.
                    state.maybe_stale = [false; 2];
                }
                _ => {}
            }
            state.t = t2 + 1;
        }
    }
    true
}

fn check(state: &State) {
    state.machine.check_invariants();
    let mut drained = state.machine.clone();
    drained.drain_for_verification();
    let base = line_base(&state.machine);
    for w in 0..8 {
        assert_eq!(
            drained.mem.read_word(base.offset(4 * w as u32)),
            state.reference[w],
            "drained word {w} disagrees with the reference model"
        );
    }
}

fn key_of(state: &State) -> Key {
    Key {
        digest: state
            .machine
            .line_state_digest(line_base(&state.machine).line()),
        reference: state.reference,
        sw_dirty_by: state.sw_dirty_by,
        stale_mask: stale_mask(&state.maybe_stale),
        next_value: state.next_value,
    }
}

fn explore(
    state: &State,
    depth: u32,
    counts: &mut Counts,
    visited: &mut HashMap<Key, u32>,
    path: &mut Vec<Op>,
) {
    if depth == 0 {
        return;
    }
    for &op in OPS {
        let mut next = state.clone();
        path.push(op);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if !apply(&mut next, op) {
                return false;
            }
            check(&next);
            true
        }));
        match r {
            Ok(false) => {
                path.pop();
                continue;
            }
            Ok(true) => {}
            Err(e) => {
                eprintln!("FAILING PATH: {path:?}");
                std::panic::resume_unwind(e);
            }
        }
        counts.checked += 1;
        // Re-enter a visited state only if the remaining budget lets us go
        // deeper below it than any earlier visit could.
        match visited.get(&key_of(&next)) {
            Some(&seen) if seen >= depth - 1 => {
                counts.deduped += 1;
                path.pop();
                continue;
            }
            _ => {
                visited.insert(key_of(&next), depth - 1);
            }
        }
        explore(&next, depth - 1, counts, visited, path);
        path.pop();
    }
}

#[test]
fn model_check_cohesion_protocol() {
    let mut state = State {
        machine: small_machine(DesignPoint::cohesion(256, 64)),
        reference: [0; 8],
        sw_dirty_by: [None; 8],
        maybe_stale: [false; 2],
        t: 0,
        next_value: 0,
    };
    // Seed the reference with the line's initial contents (zero).
    state.machine.boot();
    let mut counts = Counts::default();
    explore(&state, 4, &mut counts, &mut HashMap::new(), &mut Vec::new());
    assert!(counts.checked > 1_000, "checked {} states", counts.checked);
    assert!(counts.deduped > 0, "dedup never fired");
    println!(
        "model-checked {} transitions, {} deduped (depth 4)",
        counts.checked, counts.deduped
    );
}

#[test]
fn model_check_pure_hwcc() {
    let state = State {
        machine: small_machine(DesignPoint::hwcc_ideal()),
        reference: [0; 8],
        sw_dirty_by: [None; 8],
        maybe_stale: [false; 2],
        t: 0,
        next_value: 0,
    };
    let mut counts = Counts::default();
    // Transitions are meaningless under pure HWcc but harmless; explore
    // everything anyway. The pure-mode state graphs are small (transitions
    // change nothing), so dedup lets us go deeper than the hybrid walk.
    explore(&state, 6, &mut counts, &mut HashMap::new(), &mut Vec::new());
    assert!(counts.checked > 1_000, "checked {} states", counts.checked);
    assert!(counts.deduped > 0, "dedup never fired");
    println!(
        "pure HWcc: {} transitions, {} deduped (depth 6)",
        counts.checked, counts.deduped
    );
}

#[test]
fn model_check_pure_swcc() {
    let state = State {
        machine: small_machine(DesignPoint::swcc()),
        reference: [0; 8],
        sw_dirty_by: [None; 8],
        maybe_stale: [false; 2],
        t: 0,
        next_value: 0,
    };
    let mut counts = Counts::default();
    explore(&state, 6, &mut counts, &mut HashMap::new(), &mut Vec::new());
    assert!(counts.checked > 1_000, "checked {} states", counts.checked);
    assert!(counts.deduped > 0, "dedup never fired");
    println!(
        "pure SWcc: {} transitions, {} deduped (depth 6)",
        counts.checked, counts.deduped
    );
}

/// Depth-7 exploration (dedup makes this tractable — the un-deduplicated
/// tree would be ~9^7 paths); run explicitly with
/// `cargo test --release --test model_check -- --ignored`.
#[test]
#[ignore = "deep exploration; run explicitly"]
fn model_check_cohesion_depth7() {
    let mut state = State {
        machine: small_machine(DesignPoint::cohesion(256, 64)),
        reference: [0; 8],
        sw_dirty_by: [None; 8],
        maybe_stale: [false; 2],
        t: 0,
        next_value: 0,
    };
    state.machine.boot();
    let mut counts = Counts::default();
    explore(&state, 7, &mut counts, &mut HashMap::new(), &mut Vec::new());
    assert!(counts.checked > 10_000, "checked {} states", counts.checked);
    assert!(counts.deduped > counts.checked / 2, "dedup barely fired");
    println!(
        "depth 7: {} transitions, {} deduped",
        counts.checked, counts.deduped
    );
}

#[test]
fn model_check_deeper_with_mesi_ablation() {
    let mut cfg = MachineConfig::scaled(16, DesignPoint::cohesion(256, 64));
    cfg.l3_total_bytes = 128 * 1024;
    cfg.exclusive_state = true;
    let layout = Layout::new(&LayoutConfig::new(16));
    let mut m = Machine::new(cfg, layout);
    m.boot();
    let state = State {
        machine: m,
        reference: [0; 8],
        sw_dirty_by: [None; 8],
        maybe_stale: [false; 2],
        t: 0,
        next_value: 0,
    };
    let mut counts = Counts::default();
    explore(&state, 4, &mut counts, &mut HashMap::new(), &mut Vec::new());
    assert!(counts.checked > 1_000);
    println!(
        "MESI ablation: {} transitions, {} deduped",
        counts.checked, counts.deduped
    );
}

/// Three-cluster op set (deeper sharing interleavings); depth 4.
const OPS3: &[Op] = &[
    Op::Load { cluster: 0, word: 0 },
    Op::Load { cluster: 1, word: 0 },
    Op::Load { cluster: 2, word: 4 },
    Op::Store { cluster: 0, word: 0 },
    Op::Store { cluster: 1, word: 4 },
    Op::Store { cluster: 2, word: 7 },
    Op::Flush { cluster: 0 },
    Op::Flush { cluster: 2 },
    Op::Invalidate { cluster: 1 },
    Op::ToSwcc,
    Op::ToHwcc,
];

fn key_of3(state: &State3) -> Key {
    Key {
        digest: state
            .machine
            .line_state_digest(line_base(&state.machine).line()),
        reference: state.reference,
        sw_dirty_by: state.sw_dirty_by,
        stale_mask: stale_mask(&state.maybe_stale),
        next_value: state.next_value,
    }
}

fn explore3(
    state: &State3,
    depth: u32,
    counts: &mut Counts,
    visited: &mut HashMap<Key, u32>,
    path: &mut Vec<Op>,
) {
    if depth == 0 {
        return;
    }
    for &op in OPS3 {
        let mut next = state.clone();
        path.push(op);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if !apply3(&mut next, op) {
                return false;
            }
            check3(&next);
            true
        }));
        match r {
            Ok(false) => {
                path.pop();
                continue;
            }
            Ok(true) => {}
            Err(e) => {
                eprintln!("FAILING PATH (3 clusters): {path:?}");
                std::panic::resume_unwind(e);
            }
        }
        counts.checked += 1;
        match visited.get(&key_of3(&next)) {
            Some(&seen) if seen >= depth - 1 => {
                counts.deduped += 1;
                path.pop();
                continue;
            }
            _ => {
                visited.insert(key_of3(&next), depth - 1);
            }
        }
        explore3(&next, depth - 1, counts, visited, path);
        path.pop();
    }
}

/// Three-cluster state: same model, wider staleness vector.
#[derive(Clone)]
struct State3 {
    machine: Machine,
    reference: [u32; 8],
    sw_dirty_by: [Option<u32>; 8],
    maybe_stale: [bool; 3],
    t: u64,
    next_value: u32,
}

fn apply3(state: &mut State3, op: Op) -> bool {
    // Reuse the 2-cluster semantics with a widened staleness vector.
    let base = line_base(&state.machine);
    let line = base.line();
    let m = &mut state.machine;
    let core = |c: u32| CoreId(c * 8);
    match op {
        Op::Load { cluster, word } => {
            if let Some(owner) = state.sw_dirty_by[word] {
                if owner != cluster {
                    return false;
                }
            }
            let (t2, v) = m.load(core(cluster), base.offset(4 * word as u32), state.t);
            if !state.maybe_stale[cluster as usize] {
                assert_eq!(v, state.reference[word], "stale load (3c)");
            }
            state.t = t2 + 1;
        }
        Op::Store { cluster, word } => {
            if let Some(owner) = state.sw_dirty_by[word] {
                if owner != cluster {
                    return false;
                }
            }
            state.next_value += 1;
            let v = state.next_value;
            let swcc = m.domain_of(line) == cohesion_protocol::region::Domain::SWcc;
            let t2 = m.store(core(cluster), base.offset(4 * word as u32), v, state.t);
            state.reference[word] = v;
            if swcc {
                state.sw_dirty_by[word] = Some(cluster);
                for (i, st) in state.maybe_stale.iter_mut().enumerate() {
                    if i as u32 != cluster {
                        *st = true;
                    }
                }
            } else {
                for (i, st) in state.maybe_stale.iter_mut().enumerate() {
                    if i as u32 != cluster {
                        *st = false;
                    }
                }
            }
            state.t = t2 + 1;
        }
        Op::Flush { cluster } => {
            let t2 = m.flush(core(cluster), line, state.t);
            for w in 0..8 {
                if state.sw_dirty_by[w] == Some(cluster) {
                    state.sw_dirty_by[w] = None;
                }
            }
            state.t = t2 + 1;
        }
        Op::Invalidate { cluster } => {
            if state.sw_dirty_by.contains(&Some(cluster)) {
                return false;
            }
            let swcc = m.domain_of(line) == cohesion_protocol::region::Domain::SWcc;
            let t2 = m.invalidate(core(cluster), line, state.t);
            if swcc {
                state.maybe_stale[cluster as usize] = false;
            }
            state.t = t2 + 1;
        }
        Op::Atomic { .. } => return false, // not in OPS3
        Op::ToSwcc | Op::ToHwcc => {
            if m.config().design.mode != cohesion_runtime::api::CohMode::Cohesion {
                return false;
            }
            let was = m.domain_of(line);
            let slot = m.fine_table().slot_of(line);
            let (kind, operand) = match op {
                Op::ToSwcc => (AtomicKind::Or, 1u32 << slot.bit),
                _ => (AtomicKind::And, !(1u32 << slot.bit)),
            };
            let (t2, _) = m
                .atomic(ClusterId(0), slot.word, kind, operand, state.t)
                .expect("races were pruned");
            match op {
                Op::ToHwcc if was == cohesion_protocol::region::Domain::SWcc => {
                    state.sw_dirty_by = [None; 8];
                }
                Op::ToSwcc if was == cohesion_protocol::region::Domain::HWcc => {
                    state.maybe_stale = [false; 3];
                }
                _ => {}
            }
            state.t = t2 + 1;
        }
    }
    true
}

fn check3(state: &State3) {
    state.machine.check_invariants();
    let mut drained = state.machine.clone();
    drained.drain_for_verification();
    let base = line_base(&state.machine);
    for w in 0..8 {
        assert_eq!(
            drained.mem.read_word(base.offset(4 * w as u32)),
            state.reference[w],
            "drained word {w} disagrees (3 clusters)"
        );
    }
}

#[test]
fn model_check_three_clusters() {
    let mut cfg = MachineConfig::scaled(32, DesignPoint::cohesion(256, 64));
    cfg.l3_total_bytes = 128 * 1024;
    let layout = cohesion_runtime::layout::Layout::new(
        &cohesion_runtime::layout::LayoutConfig::new(32),
    );
    let mut m = Machine::new(cfg, layout);
    m.boot();
    let state = State3 {
        machine: m,
        reference: [0; 8],
        sw_dirty_by: [None; 8],
        maybe_stale: [false; 3],
        t: 0,
        next_value: 0,
    };
    let mut counts = Counts::default();
    explore3(&state, 4, &mut counts, &mut HashMap::new(), &mut Vec::new());
    assert!(counts.checked > 2_000, "checked {} states", counts.checked);
    assert!(counts.deduped > 0, "dedup never fired (3 clusters)");
    println!(
        "3 clusters: {} transitions, {} deduped",
        counts.checked, counts.deduped
    );
}
