//! Integration: multiprogrammed execution with per-process region tables
//! (§3.5's virtualization, implemented).

use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::multi::run_workloads;
use cohesion::run::run_workload;
use cohesion::workloads::micro::Microbench;
use cohesion_kernels::{kernel_by_name, Scale};

#[test]
fn two_kernels_share_the_machine_and_both_verify() {
    for dp in [
        DesignPoint::swcc(),
        DesignPoint::hwcc_ideal(),
        DesignPoint::cohesion(1024, 128),
    ] {
        let cfg = MachineConfig::scaled(32, dp);
        let mut a = kernel_by_name("heat", Scale::Tiny);
        let mut b = kernel_by_name("kmeans", Scale::Tiny);
        let reports = run_workloads(&cfg, vec![a.as_mut(), b.as_mut()])
            .unwrap_or_else(|e| panic!("{dp:?}: {e}"));
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].kernel, "heat");
        assert_eq!(reports[1].kernel, "kmeans");
        for r in &reports {
            assert!(r.finished_at > 0, "{}: time must pass", r.kernel);
            assert!(r.messages.total() > 0, "{}: traffic must flow", r.kernel);
            assert!(r.phases > 0);
        }
    }
}

#[test]
fn four_microbenches_with_separate_tables() {
    let cfg = MachineConfig::scaled(32, DesignPoint::cohesion(1024, 128));
    let mut a = Microbench::producer_consumer(8, 32);
    let mut b = Microbench::transition_bridge(8, 32);
    let mut c = Microbench::atomic_counters(8, 8);
    let mut d = Microbench::thread_migration(8, 16);
    let reports = run_workloads(&cfg, vec![&mut a, &mut b, &mut c, &mut d]).expect("all verify");
    assert_eq!(reports.len(), 4);
    // The bridge job performed transitions against *its own* table without
    // disturbing the others (all four verified inside run_workloads).
    assert!(reports[1].finished_at > 0);
}

#[test]
fn single_job_multi_matches_the_plain_runner_semantics() {
    // Not cycle-identical (the multi runner interleaves job bookkeeping
    // differently), but the same kernel must verify and do comparable work.
    let cfg = MachineConfig::scaled(16, DesignPoint::cohesion(1024, 128));
    let mut wl = kernel_by_name("sobel", Scale::Tiny);
    let multi = run_workloads(&cfg, vec![wl.as_mut()]).expect("verifies");
    let mut wl2 = kernel_by_name("sobel", Scale::Tiny);
    let single = run_workload(&cfg, wl2.as_mut()).expect("verifies");
    assert_eq!(multi[0].tasks, single.tasks);
    assert_eq!(multi[0].phases, single.phases);
}

#[test]
fn invariants_hold_under_multiprogramming() {
    let mut cfg = MachineConfig::scaled(32, DesignPoint::cohesion(512, 128));
    cfg.check_invariants = true;
    let mut a = kernel_by_name("dmm", Scale::Tiny);
    let mut b = kernel_by_name("stencil", Scale::Tiny);
    run_workloads(&cfg, vec![a.as_mut(), b.as_mut()]).expect("verifies with checks on");
}

#[test]
fn contention_shows_up_in_finish_times() {
    // A job sharing the machine finishes no earlier than... actually just
    // sanity: both jobs make progress and the slower kernel finishes later
    // than the trivial one.
    let cfg = MachineConfig::scaled(32, DesignPoint::swcc());
    let mut big = kernel_by_name("heat", Scale::Tiny);
    let mut small = Microbench::read_shared(4, 16);
    let reports = run_workloads(&cfg, vec![big.as_mut(), &mut small]).expect("verifies");
    assert!(
        reports[0].finished_at > reports[1].finished_at,
        "heat ({}) outlasts a 4-task microbench ({})",
        reports[0].finished_at,
        reports[1].finished_at
    );
}

#[test]
#[should_panic(expected = "at least one cluster per job")]
fn more_jobs_than_clusters_is_rejected() {
    let cfg = MachineConfig::scaled(16, DesignPoint::swcc()); // 2 clusters
    let mut a = Microbench::read_shared(2, 8);
    let mut b = Microbench::read_shared(2, 8);
    let mut c = Microbench::read_shared(2, 8);
    let _ = run_workloads(&cfg, vec![&mut a, &mut b, &mut c]);
}

#[test]
#[should_panic(expected = "must not overlap")]
fn overlapping_process_slices_are_rejected() {
    use cohesion::machine::Machine;
    use cohesion_runtime::layout::{Layout, LayoutConfig};
    let l0 = Layout::new(&LayoutConfig::new(16));
    let mut cfg1 = LayoutConfig::new(16);
    cfg1.fine_table_base += 1 << 24; // distinct table, same slice
    let l1 = Layout::new(&cfg1);
    let _ = Machine::new_multi(MachineConfig::scaled(16, DesignPoint::swcc()), vec![l0, l1]);
}

#[test]
#[should_panic(expected = "distinct fine-grain tables")]
fn shared_fine_tables_are_rejected() {
    use cohesion::machine::Machine;
    use cohesion_runtime::layout::LayoutConfig;
    use cohesion_runtime::layout::Layout;
    let l0 = Layout::new(&LayoutConfig::for_process(0, 16));
    let mut cfg1 = LayoutConfig::for_process(1, 16);
    cfg1.fine_table_base = LayoutConfig::for_process(0, 16).fine_table_base;
    let l1 = Layout::new(&cfg1);
    let _ = Machine::new_multi(MachineConfig::scaled(16, DesignPoint::swcc()), vec![l0, l1]);
}
