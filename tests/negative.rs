//! Negative tests: the verification machinery must *catch* coherence
//! misuse, not paper over it. A checker that never fires is no checker.

use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::run::{run_workload, RunError, Workload};
use cohesion_mem::addr::Addr;
use cohesion_mem::mainmem::MainMemory;
use cohesion_runtime::api::{CohesionApi, RuntimeError};
use cohesion_runtime::task::{Phase, TaskBuilder};

/// A buggy SWcc program: phase 1 writes a block but *forgets to flush*;
/// phase 2 reads it from another task. Under SWcc the consumer must see
/// stale data (the writes are stuck dirty in the producer's L2) — the
/// verified load fails. Under HWcc the directory pulls the dirty line and
/// the same program is correct (exactly the porting-convenience argument of
/// §2.2).
struct MissingFlush {
    data: Addr,
    words: u32,
    phase: u32,
}

impl MissingFlush {
    fn new(words: u32) -> Self {
        MissingFlush {
            data: Addr(0),
            words,
            phase: 0,
        }
    }
}

impl Workload for MissingFlush {
    fn name(&self) -> &'static str {
        "missing-flush"
    }

    fn setup(
        &mut self,
        api: &mut CohesionApi,
        _golden: &mut MainMemory,
    ) -> Result<(), RuntimeError> {
        self.data = api.coh_malloc(self.words * 4)?;
        Ok(())
    }

    fn next_phase(&mut self, _api: &mut CohesionApi, golden: &mut MainMemory) -> Option<Phase> {
        let phase = self.phase;
        self.phase += 1;
        match phase {
            0 => {
                let mut p = Phase::new("produce-without-flush");
                let mut b = TaskBuilder::new(2);
                for i in 0..self.words {
                    let a = Addr(self.data.0 + 4 * i);
                    golden.write_word(a, i + 1);
                    b.store(a, i + 1);
                }
                // BUG: no flush_written() — dirty words never reach the L3.
                p.tasks.push(b.build());
                Some(p)
            }
            1 => {
                let mut p = Phase::new("consume");
                // Enough tasks that one lands on a different cluster than
                // the producer (which ran on cluster 0's first free core).
                for _ in 0..16 {
                    let mut b = TaskBuilder::new(2);
                    for i in 0..self.words {
                        let a = Addr(self.data.0 + 4 * i);
                        b.load(a, golden.read_word(a));
                    }
                    b.invalidate_read(|_| true);
                    p.tasks.push(b.build());
                }
                Some(p)
            }
            _ => None,
        }
    }

    fn verify(&self, mem: &MainMemory) -> Result<(), String> {
        for i in 0..self.words {
            let got = mem.read_word(Addr(self.data.0 + 4 * i));
            if got != i + 1 {
                return Err(format!("word {i} is {got}, expected {}", i + 1));
            }
        }
        Ok(())
    }
}

#[test]
fn missing_flush_is_caught_under_swcc() {
    let cfg = MachineConfig::scaled(32, DesignPoint::swcc());
    let err = run_workload(&cfg, &mut MissingFlush::new(64)).unwrap_err();
    assert!(
        matches!(err, RunError::Machine(_)),
        "the stale verified load must abort the run, got: {err}"
    );
}

#[test]
fn same_program_is_correct_under_hwcc() {
    // §2.2: "Shared memory applications can be ported to a HWcc design
    // without a full rewrite" — the directory pulls the un-flushed data.
    let cfg = MachineConfig::scaled(32, DesignPoint::hwcc_ideal());
    run_workload(&cfg, &mut MissingFlush::new(64)).expect("HWcc forgives the missing flush");
}

#[test]
fn same_program_is_correct_under_cohesion_after_hwcc_migration() {
    // And the hybrid fix: move the region to HWcc before consuming.
    struct Fixed(MissingFlush);
    impl Workload for Fixed {
        fn name(&self) -> &'static str {
            "missing-flush-fixed"
        }
        fn setup(
            &mut self,
            api: &mut CohesionApi,
            golden: &mut MainMemory,
        ) -> Result<(), RuntimeError> {
            self.0.setup(api, golden)
        }
        fn next_phase(&mut self, api: &mut CohesionApi, golden: &mut MainMemory) -> Option<Phase> {
            // Before the producing phase, move the block under hardware
            // coherence; the un-flushed writes are then directory-visible.
            if self.0.phase == 0 {
                api.coh_hwcc_region(self.0.data, self.0.words * 4)
                    .expect("valid region");
            }
            self.0.next_phase(api, golden)
        }
        fn verify(&self, mem: &MainMemory) -> Result<(), String> {
            self.0.verify(mem)
        }
    }
    let cfg = MachineConfig::scaled(32, DesignPoint::cohesion(1024, 128));
    run_workload(&cfg, &mut Fixed(MissingFlush::new(64)))
        .expect("coh_HWcc_region makes the sloppy program correct");
}

#[test]
fn allocation_failure_is_reported() {
    struct Hog;
    impl Workload for Hog {
        fn name(&self) -> &'static str {
            "hog"
        }
        fn setup(
            &mut self,
            api: &mut CohesionApi,
            _golden: &mut MainMemory,
        ) -> Result<(), RuntimeError> {
            // More than the incoherent heap holds.
            api.coh_malloc(u32::MAX / 2).map(|_| ())
        }
        fn next_phase(&mut self, _: &mut CohesionApi, _: &mut MainMemory) -> Option<Phase> {
            None
        }
        fn verify(&self, _: &MainMemory) -> Result<(), String> {
            Ok(())
        }
    }
    let cfg = MachineConfig::scaled(16, DesignPoint::swcc());
    let err = run_workload(&cfg, &mut Hog).unwrap_err();
    assert!(matches!(err, RunError::Runtime(_)), "got: {err}");
}
