//! Integration: the paper's qualitative claims hold on a scaled machine.
//!
//! These are *shape* assertions — who wins, in which direction — not
//! absolute-number matches; the quantitative tables live in EXPERIMENTS.md
//! and are produced by the `cohesion-bench` binaries at larger scale.

use cohesion::config::{DesignPoint, DirectoryVariant, MachineConfig};
use cohesion::report::RunReport;
use cohesion::run::run_workload;
use cohesion_kernels::{kernel_by_name, Scale};
use cohesion_runtime::api::CohMode;

fn run(kernel: &str, cores: u32, scale: Scale, dp: DesignPoint) -> RunReport {
    let cfg = MachineConfig::scaled(cores, dp);
    let mut wl = kernel_by_name(kernel, scale);
    run_workload(&cfg, wl.as_mut()).unwrap_or_else(|e| panic!("{kernel}: {e}"))
}

/// §2.1/Figure 2: optimistic HWcc sends more messages than SWcc for
/// eviction-heavy kernels — the extra traffic is write misses and read
/// releases.
#[test]
fn hwcc_message_overhead_on_streaming_kernels() {
    // Small scale: per-cluster working sets exceed the 64 KB L2, so
    // evictions (and HWcc's read releases) actually happen.
    let swcc = run("heat", 16, Scale::Small, DesignPoint::swcc());
    let hwcc = run("heat", 16, Scale::Small, DesignPoint::hwcc_ideal());

    assert!(
        hwcc.total_messages() > swcc.total_messages(),
        "HWcc ({}) must out-message SWcc ({}) on heat",
        hwcc.total_messages(),
        swcc.total_messages()
    );
    use cohesion_sim::msg::MessageClass::*;
    assert!(hwcc.messages.count(ReadRelease) > 0, "read releases appear");
    assert!(hwcc.messages.count(WriteRequest) > 0, "write misses appear");
    assert_eq!(swcc.messages.count(ReadRelease), 0);
}

/// Figure 3: instruction usefulness grows with L2 size.
#[test]
fn coherence_instruction_usefulness_grows_with_l2() {
    let mut useful = Vec::new();
    for size in [8 * 1024u32, 128 * 1024] {
        let mut cfg = MachineConfig::scaled(16, DesignPoint::swcc());
        cfg.l2 = cohesion_mem::cache::CacheConfig::new(size, 16);
        let mut wl = kernel_by_name("heat", Scale::Small);
        let rep = run_workload(&cfg, wl.as_mut()).expect("runs");
        useful.push(rep.instr_stats.combined_usefulness());
    }
    assert!(
        useful[1] >= useful[0],
        "bigger L2 keeps more lines resident for their coherence ops: {useful:?}"
    );
}

/// §4.3/Figure 9c: Cohesion allocates fewer directory entries than HWcc.
#[test]
fn cohesion_reduces_directory_utilization() {
    let mut total_hw = 0.0;
    let mut total_coh = 0.0;
    for kernel in ["heat", "dmm", "stencil", "sobel"] {
        let hw = run(kernel, 16, Scale::Tiny, DesignPoint::hwcc_ideal());
        let coh = run(kernel, 16, Scale::Tiny, DesignPoint::cohesion_infinite());
        assert!(
            coh.dir_avg_entries < hw.dir_avg_entries,
            "{kernel}: Cohesion avg {} !< HWcc avg {}",
            coh.dir_avg_entries,
            hw.dir_avg_entries
        );
        total_hw += hw.dir_avg_entries;
        total_coh += coh.dir_avg_entries;
    }
    assert!(
        total_hw / total_coh > 1.5,
        "aggregate reduction should be well over 1.5x (paper: 2.1x), got {:.2}",
        total_hw / total_coh
    );
}

/// Figure 9a vs 9b: shrinking the directory hurts HWcc far more than
/// Cohesion.
#[test]
fn cohesion_is_robust_to_directory_capacity() {
    let kernel = "sobel";
    let sweep = |mode: CohMode, entries: Option<u32>| {
        let directory = match entries {
            None => DirectoryVariant::FullMapInfinite,
            Some(e) => DirectoryVariant::FullyAssociative { entries: e },
        };
        run(kernel, 16, Scale::Small, DesignPoint { mode, directory })
    };
    let hw_inf = sweep(CohMode::HWcc, None);
    let hw_small = sweep(CohMode::HWcc, Some(64));
    let coh_inf = sweep(CohMode::Cohesion, None);
    let coh_small = sweep(CohMode::Cohesion, Some(64));
    let hw_slow = hw_small.cycles as f64 / hw_inf.cycles as f64;
    let coh_slow = coh_small.cycles as f64 / coh_inf.cycles as f64;
    assert!(
        hw_small.dir_evictions > coh_small.dir_evictions,
        "HWcc must thrash the tiny directory harder ({} vs {})",
        hw_small.dir_evictions,
        coh_small.dir_evictions
    );
    assert!(
        hw_slow > coh_slow,
        "HWcc slowdown {hw_slow:.2} must exceed Cohesion slowdown {coh_slow:.2}"
    );
}

/// §4.2: kmeans is the exception — dominated by atomics, SWcc gains
/// nothing, and Cohesion actually reduces traffic below SWcc by moving the
/// accumulators under HWcc.
#[test]
fn kmeans_atomics_shape() {
    use cohesion_sim::msg::MessageClass::UncachedAtomic;
    let sw = run("kmeans", 16, Scale::Tiny, DesignPoint::swcc());
    let coh = run("kmeans", 16, Scale::Tiny, DesignPoint::cohesion(1024, 128));
    let sw_atomic_frac = sw.messages.count(UncachedAtomic) as f64 / sw.total_messages() as f64;
    assert!(
        sw_atomic_frac > 0.5,
        "SWcc kmeans is dominated by atomics, got {sw_atomic_frac:.2}"
    );
    assert!(
        coh.messages.count(UncachedAtomic) < sw.messages.count(UncachedAtomic),
        "Cohesion reduces uncached operations (§4.2)"
    );
}

/// §3.6: domain transitions really move lines between protocols, and the
/// data survives the journey (covered by verification inside the run).
#[test]
fn transitions_occur_under_cohesion() {
    let coh = run("cg", 16, Scale::Tiny, DesignPoint::cohesion(1024, 128));
    // cg allocates on both heaps; at minimum coh_malloc'd data lives as
    // SWcc while reduction slots are HWcc — and the run verified.
    assert_eq!(coh.races, 0);
    // Pure modes perform no transitions.
    let hw = run("cg", 16, Scale::Tiny, DesignPoint::hwcc_ideal());
    assert_eq!(hw.transitions, (0, 0));
}

/// Table 1's network-constraints column: SWcc eliminates probes and
/// broadcasts for independent data; HWcc handles dependences in hardware.
#[test]
fn probe_traffic_only_exists_with_a_directory() {
    use cohesion_sim::msg::MessageClass::ProbeResponse;
    let sw = run("stencil", 16, Scale::Tiny, DesignPoint::swcc());
    assert_eq!(sw.messages.count(ProbeResponse), 0);
    let hw = run("kmeans", 16, Scale::Tiny, DesignPoint::hwcc_ideal());
    // kmeans atomics recall cached accumulator lines through the directory.
    assert!(hw.dir_insertions > 0);
}

/// Message-count conservation: every message in the Figure 2/8 taxonomy
/// traverses the NoC's request direction exactly once — the counters and
/// the network agree to the message.
#[test]
fn message_counts_match_the_network() {
    for kernel in ["heat", "kmeans", "gjk"] {
        for dp in [
            DesignPoint::swcc(),
            DesignPoint::hwcc_ideal(),
            DesignPoint::cohesion(1024, 128),
        ] {
            let r = run(kernel, 16, Scale::Tiny, dp);
            assert_eq!(
                r.noc.0,
                r.total_messages(),
                "{kernel} under {dp:?}: NoC request count must equal the                  message taxonomy's total"
            );
        }
    }
}
