//! The machine-level property: *any* data-race-free bulk-synchronous
//! program computes the right answer under *any* design point.
//!
//! Random microbenchmark shapes × random machine configurations, each run
//! end-to-end with golden verification inside `run_workload`.

use cohesion::config::{DesignPoint, DirectoryVariant, MachineConfig};
use cohesion::run::run_workload;
use cohesion::workloads::micro::Microbench;
use cohesion_runtime::api::CohMode;
use proptest::prelude::*;

fn arb_design_point() -> impl Strategy<Value = DesignPoint> {
    let modes = prop_oneof![
        Just(CohMode::SWcc),
        Just(CohMode::HWcc),
        Just(CohMode::Cohesion)
    ];
    let dirs = prop_oneof![
        Just(DirectoryVariant::FullMapInfinite),
        Just(DirectoryVariant::Sparse {
            entries: 256,
            ways: 64
        }),
        Just(DirectoryVariant::Dir4B {
            entries: 256,
            ways: 64
        }),
        Just(DirectoryVariant::FullyAssociative { entries: 32 }),
    ];
    (modes, dirs).prop_map(|(mode, directory)| DesignPoint {
        mode,
        directory: if mode == CohMode::SWcc {
            DirectoryVariant::None
        } else {
            directory
        },
    })
}

fn arb_workload() -> impl Strategy<Value = Microbench> {
    let tasks = 1usize..20;
    let words = 1usize..48;
    (0u8..6, tasks, words).prop_map(|(pattern, tasks, words)| match pattern {
        0 => Microbench::read_shared(tasks, words),
        1 => Microbench::private_blocks(tasks, words),
        2 => Microbench::producer_consumer(tasks, words),
        3 => Microbench::atomic_counters(tasks, words.min(16)),
        4 => Microbench::thread_migration(tasks, words),
        _ => Microbench::transition_bridge(tasks, words),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_bsp_program_verifies_under_any_design_point(
        mut wl in arb_workload(),
        dp in arb_design_point(),
        cores in prop_oneof![Just(16u32), Just(32), Just(64)],
    ) {
        let cfg = MachineConfig::scaled(cores, dp);
        let report = run_workload(&cfg, &mut wl)
            .unwrap_or_else(|e| panic!("{dp:?} @{cores}: {e}"));
        prop_assert!(report.cycles > 0);
        prop_assert_eq!(report.races, 0, "BSP programs must not race");
    }

    #[test]
    fn tiny_l2_and_l1_geometries_stay_correct(
        mut wl in arb_workload(),
        l2_pow in 9u32..13, // 512 B .. 4 KB L2
        dp in arb_design_point(),
    ) {
        let mut cfg = MachineConfig::scaled(16, dp);
        cfg.l2 = cohesion_mem::cache::CacheConfig::new(1 << l2_pow, 16);
        prop_assume!(cfg.l2.sets() >= 1 && cfg.l2.sets().is_power_of_two());
        let report = run_workload(&cfg, &mut wl)
            .unwrap_or_else(|e| panic!("L2 {} B under {dp:?}: {e}", 1 << l2_pow));
        prop_assert!(report.cycles > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Multiprogramming: any pair of random BSP programs sharing the
    /// machine (with per-process region tables) both verify.
    #[test]
    fn multiprogrammed_pairs_verify(
        mut a in arb_workload(),
        mut b in arb_workload(),
        dp in arb_design_point(),
    ) {
        let cfg = MachineConfig::scaled(32, dp);
        let reports = cohesion::multi::run_workloads(&cfg, vec![&mut a, &mut b])
            .unwrap_or_else(|e| panic!("{dp:?}: {e}"));
        prop_assert_eq!(reports.len(), 2);
        for r in &reports {
            prop_assert!(r.finished_at > 0);
        }
    }
}
