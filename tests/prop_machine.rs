//! The machine-level property: *any* data-race-free bulk-synchronous
//! program computes the right answer under *any* design point.
//!
//! Random microbenchmark shapes × random machine configurations, each run
//! end-to-end with golden verification inside `run_workload`. Runs on the
//! first-party `cohesion-testkit` harness: ≥ 64 deterministic cases each,
//! replayable via `COHESION_PROP_SEED`.

use cohesion::config::{DesignPoint, DirectoryVariant, MachineConfig};
use cohesion::run::run_workload;
use cohesion::workloads::micro::Microbench;
use cohesion_runtime::api::CohMode;
use cohesion_testkit::prop::{assume, range, sample, Runner, Strategy};

fn design_points() -> impl Strategy<Value = DesignPoint> {
    let modes = sample(&[CohMode::SWcc, CohMode::HWcc, CohMode::Cohesion]);
    let dirs = sample(&[
        DirectoryVariant::FullMapInfinite,
        DirectoryVariant::Sparse {
            entries: 256,
            ways: 64,
        },
        DirectoryVariant::Dir4B {
            entries: 256,
            ways: 64,
        },
        DirectoryVariant::FullyAssociative { entries: 32 },
    ]);
    (modes, dirs).map(|(mode, directory)| DesignPoint {
        mode,
        directory: if mode == CohMode::SWcc {
            DirectoryVariant::None
        } else {
            directory
        },
    })
}

fn workloads() -> impl Strategy<Value = Microbench> {
    (range(0u8..6), range(1usize..20), range(1usize..48)).map(
        |(pattern, tasks, words)| match pattern {
            0 => Microbench::read_shared(tasks, words),
            1 => Microbench::private_blocks(tasks, words),
            2 => Microbench::producer_consumer(tasks, words),
            3 => Microbench::atomic_counters(tasks, words.min(16)),
            4 => Microbench::thread_migration(tasks, words),
            _ => Microbench::transition_bridge(tasks, words),
        },
    )
}

#[test]
fn any_bsp_program_verifies_under_any_design_point() {
    Runner::new("any_bsp_program_verifies_under_any_design_point")
        .cases(64)
        .run(
            &(workloads(), design_points(), sample(&[16u32, 32, 64])),
            |(mut wl, dp, cores)| {
                let cfg = MachineConfig::scaled(cores, dp);
                let report = run_workload(&cfg, &mut wl)
                    .unwrap_or_else(|e| panic!("{dp:?} @{cores}: {e}"));
                assert!(report.cycles > 0);
                assert_eq!(report.races, 0, "BSP programs must not race");
            },
        );
}

#[test]
fn tiny_l2_and_l1_geometries_stay_correct() {
    Runner::new("tiny_l2_and_l1_geometries_stay_correct")
        .cases(64)
        .run(
            &(workloads(), range(9u32..13), design_points()),
            |(mut wl, l2_pow, dp)| {
                let mut cfg = MachineConfig::scaled(16, dp);
                cfg.l2 = cohesion_mem::cache::CacheConfig::new(1 << l2_pow, 16);
                assume(cfg.l2.sets() >= 1 && cfg.l2.sets().is_power_of_two());
                let report = run_workload(&cfg, &mut wl)
                    .unwrap_or_else(|e| panic!("L2 {} B under {dp:?}: {e}", 1 << l2_pow));
                assert!(report.cycles > 0);
            },
        );
}

/// Multiprogramming: any pair of random BSP programs sharing the machine
/// (with per-process region tables) both verify.
#[test]
fn multiprogrammed_pairs_verify() {
    Runner::new("multiprogrammed_pairs_verify")
        .cases(64)
        .run(
            &(workloads(), workloads(), design_points()),
            |(mut a, mut b, dp)| {
                let cfg = MachineConfig::scaled(32, dp);
                let reports = cohesion::multi::run_workloads(&cfg, vec![&mut a, &mut b])
                    .unwrap_or_else(|e| panic!("{dp:?}: {e}"));
                assert_eq!(reports.len(), 2);
                for r in &reports {
                    assert!(r.finished_at > 0);
                }
            },
        );
}
