//! The sharded executor's determinism contract: simulated results are a
//! function of the configuration and workload alone, never of the host
//! thread count. `MachineConfig::shards` may change wall-clock time, but
//! every simulated number — cycles, message counters, cache stats, and
//! the full metrics snapshot JSON — must be byte-identical at any shard
//! count. This is what lets cohesiond exclude `shards` from its cache
//! key and lets CI `cmp` figure outputs across shard counts.

use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::report::RunReport;
use cohesion::run::run_workload;
use cohesion_kernels::{kernel_by_name, Scale};

fn run_sharded(kernel: &str, dp: DesignPoint, shards: u32) -> RunReport {
    let mut cfg = MachineConfig::scaled(16, dp);
    cfg.shards = shards;
    cfg.metrics = true;
    let mut wl = kernel_by_name(kernel, Scale::Tiny);
    run_workload(&cfg, wl.as_mut()).unwrap_or_else(|e| panic!("{kernel} shards={shards}: {e}"))
}

fn assert_identical(ctx: &str, a: &RunReport, b: &RunReport) {
    assert_eq!(a.cycles, b.cycles, "{ctx}: cycle counts diverged");
    assert_eq!(a.messages, b.messages, "{ctx}: message counters diverged");
    assert_eq!(a.phases, b.phases, "{ctx}: phases diverged");
    assert_eq!(a.tasks, b.tasks, "{ctx}: tasks diverged");
    assert_eq!(a.ops, b.ops, "{ctx}: ops diverged");
    assert_eq!(a.transitions, b.transitions, "{ctx}: transitions diverged");
    assert_eq!(a.dram, b.dram, "{ctx}: DRAM accesses diverged");
    assert_eq!(a.l2, b.l2, "{ctx}: L2 stats diverged");
    assert_eq!(a.l3, b.l3, "{ctx}: L3 stats diverged");
    assert_eq!(a.noc, b.noc, "{ctx}: NoC stats diverged");
    assert_eq!(a.dir_insertions, b.dir_insertions, "{ctx}: dir insertions diverged");
    assert_eq!(a.dir_evictions, b.dir_evictions, "{ctx}: dir evictions diverged");
    assert_eq!(a.races, b.races, "{ctx}: race counts diverged");
    let ja = a.metrics.as_ref().expect("metrics armed").to_json();
    let jb = b.metrics.as_ref().expect("metrics armed").to_json();
    assert_eq!(ja, jb, "{ctx}: metrics snapshots diverged");
}

#[test]
fn shard_count_is_unobservable_in_simulated_results() {
    let kernels = ["heat", "kmeans", "gjk", "cg"];
    let points = [
        ("SWcc", DesignPoint::swcc()),
        ("HWccIdeal", DesignPoint::hwcc_ideal()),
        ("Cohesion", DesignPoint::cohesion(1024, 128)),
    ];
    for kernel in kernels {
        for (mode, dp) in points {
            let base = run_sharded(kernel, dp, 1);
            for shards in [2, 4] {
                let sharded = run_sharded(kernel, dp, shards);
                let ctx = format!("{kernel}/{mode} shards=1 vs {shards}");
                assert_identical(&ctx, &base, &sharded);
            }
        }
    }
}

/// Shard counts beyond the cluster count clamp rather than misbehave: a
/// 16-core machine has 2 cluster lanes, so `shards=64` must still give
/// the shards=1 results.
#[test]
fn oversubscribed_shards_clamp_to_lanes() {
    let base = run_sharded("heat", DesignPoint::cohesion(1024, 128), 1);
    let huge = run_sharded("heat", DesignPoint::cohesion(1024, 128), 64);
    assert_identical("heat/Cohesion shards=1 vs 64", &base, &huge);
}

/// `shards = 0` is the auto sentinel: the executor resolves a count from
/// the host's parallelism at run time. Whatever it picks — one worker on
/// a 1-core host, clamped-to-lanes on a wide one — the simulated results
/// must still be the shards=1 bytes.
#[test]
fn auto_shards_resolve_host_side_and_stay_identical() {
    for (mode, dp) in [
        ("SWcc", DesignPoint::swcc()),
        ("Cohesion", DesignPoint::cohesion(1024, 128)),
    ] {
        let base = run_sharded("kmeans", dp, 1);
        let auto = run_sharded("kmeans", dp, 0);
        assert_identical(&format!("kmeans/{mode} shards=1 vs auto"), &base, &auto);
    }
}
