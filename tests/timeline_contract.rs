//! The timeline flight recorder's determinism contract (PR 3 rules,
//! extended to tracing): arming the recorder must not perturb any
//! simulated result, and the deterministic half of a snapshot — the
//! epoch/slice/escalation aggregates that feed the
//! `cohesion-timeline/v1` summary — must be byte-identical at any shard
//! count. Wall-clock span timestamps live only in the Chrome trace
//! export and are explicitly outside this contract.

use cohesion::config::{DesignPoint, MachineConfig};
use cohesion::report::RunReport;
use cohesion::run::run_workload;
use cohesion_kernels::{kernel_by_name, Scale, KERNEL_NAMES};
use cohesion_sim::timeline::EscalationCause;

fn run(kernel: &str, timeline: bool, shards: u32) -> RunReport {
    let mut cfg = MachineConfig::scaled(16, DesignPoint::cohesion(16 * 1024, 128));
    cfg.shards = shards;
    cfg.timeline = timeline;
    let mut wl = kernel_by_name(kernel, Scale::Tiny);
    run_workload(&cfg, wl.as_mut())
        .unwrap_or_else(|e| panic!("{kernel} timeline={timeline} shards={shards}: {e}"))
}

fn assert_simulated_identical(ctx: &str, a: &RunReport, b: &RunReport) {
    assert_eq!(a.cycles, b.cycles, "{ctx}: cycle counts diverged");
    assert_eq!(a.messages, b.messages, "{ctx}: message counters diverged");
    assert_eq!(a.phases, b.phases, "{ctx}: phases diverged");
    assert_eq!(a.tasks, b.tasks, "{ctx}: tasks diverged");
    assert_eq!(a.ops, b.ops, "{ctx}: ops diverged");
    assert_eq!(a.transitions, b.transitions, "{ctx}: transitions diverged");
    assert_eq!(a.dram, b.dram, "{ctx}: DRAM accesses diverged");
    assert_eq!(a.l2, b.l2, "{ctx}: L2 stats diverged");
    assert_eq!(a.l3, b.l3, "{ctx}: L3 stats diverged");
    assert_eq!(a.noc, b.noc, "{ctx}: NoC stats diverged");
    assert_eq!(a.races, b.races, "{ctx}: race counts diverged");
}

/// Arming the recorder is invisible to every simulated number, and
/// disarmed runs carry no snapshot at all — at shards 1 and 4.
#[test]
fn arming_the_timeline_never_perturbs_simulated_results() {
    for kernel in ["heat", "sobel", "cg"] {
        for shards in [1, 4] {
            let off = run(kernel, false, shards);
            let on = run(kernel, true, shards);
            assert!(
                off.timeline.is_none(),
                "{kernel}: disarmed run carries a timeline snapshot"
            );
            assert!(
                on.timeline.is_some(),
                "{kernel}: armed run is missing its timeline snapshot"
            );
            let ctx = format!("{kernel} shards={shards} armed vs disarmed");
            assert_simulated_identical(&ctx, &off, &on);
        }
    }
}

/// The summary JSON — dropped-span accounting included — is a function
/// of the workload alone, never of the shard count the host used.
#[test]
fn timeline_summary_is_shard_invariant() {
    for kernel in ["heat", "kmeans", "mri"] {
        let base = run(kernel, true, 1);
        let base_json = base.timeline.as_ref().unwrap().summary_json();
        for shards in [2, 4] {
            let sharded = run(kernel, true, shards);
            let json = sharded.timeline.as_ref().unwrap().summary_json();
            assert_eq!(
                base_json, json,
                "{kernel}: summary diverged at shards=1 vs {shards}"
            );
        }
    }
}

/// Every kernel under the Cohesion design point escalates at least once
/// somewhere, so cause attribution is never an all-zero map; and the
/// slice ledger balances: fast + escalated == slices.
#[test]
fn escalation_causes_are_attributed_for_every_kernel() {
    for kernel in KERNEL_NAMES {
        let report = run(kernel, true, 1);
        let snap = report.timeline.as_ref().unwrap();
        assert_eq!(
            snap.slices(),
            snap.fast_slices + snap.escalated_total(),
            "{kernel}: slice ledger does not balance"
        );
        assert!(snap.epochs > 0, "{kernel}: no epochs recorded");
        assert!(
            snap.escalated_total() > 0,
            "{kernel}: no escalations attributed under Cohesion"
        );
    }
}

/// `docs/observability.md` keeps up with the recorder: every escalation
/// cause in the taxonomy table and every span kind in the catalog, by
/// the exact labels the code emits.
#[test]
fn observability_doc_covers_the_span_and_cause_vocabulary() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/observability.md");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    for cause in EscalationCause::ALL {
        assert!(
            text.lines().any(|l| {
                l.starts_with("| ") && l.contains(&format!("`{}`", cause.label()))
            }),
            "taxonomy table is missing cause {:?}",
            cause.label()
        );
    }
    for span in [
        "phase_a",
        "phase_b",
        "escalate",
        "l3_service",
        "dram_service",
        "crew_run",
        "crew_park",
    ] {
        assert!(
            text.lines().any(|l| l.starts_with(&format!("| `{span}`"))),
            "span catalog is missing {span:?}"
        );
    }
    assert!(
        text.contains("cohesion-timeline/v1"),
        "doc must name the summary schema"
    );
}

/// The span ring drops oldest-first and accounts for every drop: a
/// deliberately long run still reports epochs/slices exactly, with any
/// overflow visible in `dropped` rather than silently truncated.
#[test]
fn dropped_spans_are_counted_not_silent() {
    let report = run("heat", true, 1);
    let snap = report.timeline.as_ref().unwrap();
    // The summary's drop counter comes from the deterministic main ring
    // only; crew spans are accounted separately so host thread counts
    // cannot leak in.
    let summary = snap.summary_json();
    assert!(
        summary.contains(&format!("\"dropped_spans\": {}", snap.dropped)),
        "summary does not carry the ring's drop counter: {summary}"
    );
}
