//! Every kernel's generated traces satisfy the task-centric SWcc contract
//! (Figure 6): invalidate shared inputs before reading, flush dirty outputs
//! before ending, never store to immutable data. Checked *statically*
//! against the abstract protocol machine — independent of any machine
//! configuration that might mask a violation dynamically.

use cohesion_mem::addr::LineAddr;
use cohesion_mem::mainmem::MainMemory;
use cohesion_runtime::api::{CohMode, CohesionApi};
use cohesion_runtime::checker::{check_task, LineClass};
use cohesion_protocol::region::Domain;
use cohesion_kernels::{kernel_by_name, Scale, KERNEL_NAMES};

#[test]
fn all_kernel_traces_satisfy_the_swcc_contract() {
    for kernel in KERNEL_NAMES {
        for mode in [CohMode::SWcc, CohMode::Cohesion] {
            let mut wl = kernel_by_name(kernel, Scale::Tiny);
            let mut api = CohesionApi::new(16, mode);
            let mut golden = MainMemory::new();
            wl.setup(&mut api, &mut golden).expect("setup");
            let immutable = wl.immutable_ranges();
            let mut phase_no = 0;
            while let Some(phase) = wl.next_phase(&mut api, &mut golden) {
                for (ti, task) in phase.tasks.iter().enumerate() {
                    let classify = |line: LineAddr| {
                        let a = line.base();
                        if immutable
                            .iter()
                            .any(|&(s, len)| a.0 >= s.0 && a.0 < s.0 + len)
                        {
                            LineClass::SwccImmutable
                        } else if api.software_domain(a) == Domain::HWcc {
                            LineClass::Hwcc
                        } else {
                            LineClass::SwccShared
                        }
                    };
                    check_task(task, classify).unwrap_or_else(|v| {
                        panic!("{kernel} ({mode:?}) phase {phase_no} task {ti}: {v}")
                    });
                }
                phase_no += 1;
            }
        }
    }
}
